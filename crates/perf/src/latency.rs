//! The roofline latency/throughput model.

use crate::accelerator::Accelerator;
use crate::model_shape::ModelShape;
use crate::workload::{CachePolicyCost, Workload};
use serde::{Deserialize, Serialize};

/// Per-phase time breakdown of an inference request (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Time spent streaming KV-cache data from HBM.
    pub kv_cache_data_movement_s: f64,
    /// Time spent streaming model weights from HBM.
    pub weight_data_movement_s: f64,
    /// Time attributable to the attention scaled dot product `(QKᵀ)V`.
    pub scaled_dot_product_s: f64,
    /// Time attributable to the policy's score function (Keyformer's Gumbel softmax).
    pub scoring_overhead_s: f64,
    /// Other compute (projections, FFN, logits) plus fixed per-step overhead.
    pub other_s: f64,
}

impl PhaseBreakdown {
    /// Total time of the phase.
    pub fn total_s(&self) -> f64 {
        self.kv_cache_data_movement_s
            + self.weight_data_movement_s
            + self.scaled_dot_product_s
            + self.scoring_overhead_s
            + self.other_s
    }
}

/// Full estimate for one workload under one cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceEstimate {
    /// Prompt-phase breakdown.
    pub prompt: PhaseBreakdown,
    /// Token-generation-phase breakdown (summed over all generated tokens).
    pub generation: PhaseBreakdown,
    /// Peak resident bytes (weights + KV cache + workspace).
    pub peak_bytes: u64,
    /// Whether the request fits in HBM.
    pub fits_in_memory: bool,
    /// Generated tokens per second (batch-aggregated), `0` if the request does not
    /// fit in memory.
    pub tokens_per_second: f64,
}

impl InferenceEstimate {
    /// End-to-end latency in seconds.
    pub fn total_latency_s(&self) -> f64 {
        self.prompt.total_s() + self.generation.total_s()
    }
}

/// The roofline performance model: an accelerator plus a model shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PerfModel {
    /// Accelerator executing the model.
    pub accelerator: Accelerator,
    /// Model being served.
    pub model: ModelShape,
}

impl PerfModel {
    /// Creates a perf model.
    pub fn new(accelerator: Accelerator, model: ModelShape) -> Self {
        PerfModel { accelerator, model }
    }

    /// The paper's main configuration: MPT-7B on an A100-80GB.
    pub fn paper_default() -> Self {
        PerfModel::new(Accelerator::a100_80gb(), ModelShape::mpt_7b())
    }

    /// Average live KV slots per sequence over the generation phase. A reducing
    /// policy holds the cache at a constant `fraction × prompt_len`; full attention's
    /// cache keeps growing, one slot per generated token.
    fn avg_live_cache_tokens(&self, workload: &Workload, policy: &CachePolicyCost) -> f64 {
        if policy.cache_fraction >= 1.0 {
            workload.prompt_len as f64 + workload.generation_len as f64 / 2.0
        } else {
            (workload.prompt_len as f64 * policy.cache_fraction).max(1.0)
        }
    }

    /// Peak live KV slots per sequence over the whole request.
    fn peak_live_cache_tokens(&self, workload: &Workload, policy: &CachePolicyCost) -> f64 {
        if policy.cache_fraction >= 1.0 {
            (workload.prompt_len + workload.generation_len) as f64
        } else {
            // The full prompt is materialised before the post-prompt reduction.
            workload.prompt_len as f64
        }
    }

    /// Peak resident bytes for a workload under a policy.
    pub fn peak_bytes(&self, workload: &Workload, policy: &CachePolicyCost) -> u64 {
        let peak_live = self.peak_live_cache_tokens(workload, policy) as usize;
        let kv_peak = self
            .model
            .kv_cache_bytes(peak_live, workload.batch_size, workload.beam_size);
        let workspace = (256usize * 1024 * 1024) as u64;
        self.model.weight_bytes() + kv_peak + workspace
    }

    /// Estimates the prompt phase. Prompt processing is compute-dominated (all
    /// tokens are processed in parallel, weights are read once).
    fn estimate_prompt(&self, workload: &Workload) -> PhaseBreakdown {
        let seqs = workload.concurrent_sequences() as f64;
        let flops: f64 =
            self.model.flops_per_token(workload.prompt_len / 2) * workload.prompt_len as f64 * seqs;
        let weight_time = self
            .accelerator
            .memory_time(self.model.weight_bytes() as f64);
        let compute = self.accelerator.compute_time(flops);
        // Attention portion of prompt compute (quadratic term).
        let attn_flops = 2.0
            * (2 * self.model.d_model) as f64
            * (workload.prompt_len as f64 / 2.0)
            * workload.prompt_len as f64
            * self.model.num_layers as f64
            * seqs;
        let sdp = self.accelerator.compute_time(attn_flops);
        PhaseBreakdown {
            kv_cache_data_movement_s: 0.0,
            weight_data_movement_s: weight_time,
            scaled_dot_product_s: sdp,
            scoring_overhead_s: 0.0,
            other_s: (compute - sdp).max(0.0) + self.accelerator.step_overhead_s,
        }
    }

    /// Estimates the generation phase under a cache policy. Each generated token
    /// streams the weights and the live KV cache from HBM.
    fn estimate_generation(&self, workload: &Workload, policy: &CachePolicyCost) -> PhaseBreakdown {
        let steps = workload.generation_len as f64;
        if steps == 0.0 {
            return PhaseBreakdown::default();
        }
        let seqs = workload.concurrent_sequences() as f64;
        let live = self.avg_live_cache_tokens(workload, policy);
        let kv_bytes_per_step = self.model.kv_bytes_per_token() as f64 * live * seqs;
        let kv_time = self.accelerator.memory_time(kv_bytes_per_step) * steps;
        let weight_time = self
            .accelerator
            .memory_time(self.model.weight_bytes() as f64)
            * steps;
        // Scaled dot product compute per step.
        let sdp_flops =
            2.0 * (2 * self.model.d_model) as f64 * live * self.model.num_layers as f64 * seqs;
        let sdp = self.accelerator.compute_time(sdp_flops) * steps + kv_time * 0.0;
        let scoring = (sdp + kv_time) * policy.scoring_overhead;
        let other_flops = self.model.flops_per_token(0) * seqs;
        let other = self.accelerator.compute_time(other_flops) * steps
            + self.accelerator.step_overhead_s * steps;
        PhaseBreakdown {
            kv_cache_data_movement_s: kv_time,
            weight_data_movement_s: weight_time,
            scaled_dot_product_s: sdp,
            scoring_overhead_s: scoring,
            other_s: other,
        }
    }

    /// Full estimate for a workload under a cache policy.
    pub fn estimate(&self, workload: &Workload, policy: &CachePolicyCost) -> InferenceEstimate {
        let peak_bytes = self.peak_bytes(workload, policy);
        let fits = self.accelerator.fits(peak_bytes);
        let prompt = self.estimate_prompt(workload);
        let generation = self.estimate_generation(workload, policy);
        let total = prompt.total_s() + generation.total_s();
        let tokens = (workload.generation_len * workload.batch_size) as f64;
        InferenceEstimate {
            prompt,
            generation,
            peak_bytes,
            fits_in_memory: fits,
            tokens_per_second: if fits && total > 0.0 {
                tokens / total
            } else {
                0.0
            },
        }
    }

    /// Largest batch size (powers of two up to `limit`) that fits in HBM for the
    /// workload under the policy; `None` if even batch 1 does not fit.
    pub fn max_batch_size(
        &self,
        workload: &Workload,
        policy: &CachePolicyCost,
        limit: usize,
    ) -> Option<usize> {
        let mut best = None;
        let mut batch = 1;
        while batch <= limit {
            let w = workload.with_batch_size(batch);
            if self.accelerator.fits(self.peak_bytes(&w, policy)) {
                best = Some(batch);
            }
            batch *= 2;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerfModel {
        PerfModel::paper_default()
    }

    #[test]
    fn latency_grows_superlinearly_with_sequence_length() {
        // Figure 1(a): 512 -> 8k sequence length increases latency by far more than
        // the 16x token count.
        let m = model();
        let policy = CachePolicyCost::full_attention();
        let t512 = m
            .estimate(&Workload::figure1(512), &policy)
            .total_latency_s();
        let t8k = m
            .estimate(&Workload::figure1(8192), &policy)
            .total_latency_s();
        let ratio = t8k / t512;
        assert!(ratio > 20.0, "ratio {ratio}");
    }

    #[test]
    fn kv_data_movement_becomes_a_large_fraction_at_long_context() {
        // Figure 1(a), green bars: KV-cache traffic is a significant share of total
        // time at 8k context.
        let m = model();
        let est = m.estimate(&Workload::figure1(8192), &CachePolicyCost::full_attention());
        let share = est.generation.kv_cache_data_movement_s / est.total_latency_s();
        assert!(share > 0.25, "kv share {share}");
    }

    #[test]
    fn halving_the_cache_speeds_up_decoding() {
        // Figure 9: Keyformer at 50% cache achieves a tangible speedup over full
        // attention at long sequence lengths (the paper's iso-accuracy runs use
        // beam 4, which is what makes the KV traffic dominate).
        let m = model();
        let w = Workload::symmetric(4096).with_beam_size(4);
        let full = m.estimate(&w, &CachePolicyCost::full_attention());
        let kf = m.estimate(&w, &CachePolicyCost::keyformer(0.5));
        let speedup = full.total_latency_s() / kf.total_latency_s();
        assert!(speedup > 1.3 && speedup < 3.5, "speedup {speedup}");
        // KV traffic itself is cut by well over 2x (full attention's cache keeps
        // growing during generation; Keyformer's stays at 50% of the prompt).
        let kv_ratio =
            full.generation.kv_cache_data_movement_s / kf.generation.kv_cache_data_movement_s;
        assert!(kv_ratio > 2.0, "kv ratio {kv_ratio}");
    }

    #[test]
    fn keyformer_scoring_overhead_is_visible_but_small() {
        let m = model();
        let w = Workload::symmetric(4096);
        let kf = m.estimate(&w, &CachePolicyCost::keyformer(0.5));
        assert!(kf.generation.scoring_overhead_s > 0.0);
        assert!(kf.generation.scoring_overhead_s < 0.2 * kf.generation.total_s());
    }

    #[test]
    fn throughput_improves_with_cache_reduction_and_batching() {
        // Table 1: Keyformer at 50% cache beats full attention at the same batch
        // size and enables a larger batch.
        let m = model();
        let w = Workload::symmetric(4096);
        let full = m.estimate(&w, &CachePolicyCost::full_attention());
        let kf = m.estimate(&w, &CachePolicyCost::keyformer(0.5));
        assert!(kf.tokens_per_second > full.tokens_per_second);
        let kf_b2 = m.estimate(&w.with_batch_size(2), &CachePolicyCost::keyformer(0.5));
        assert!(kf_b2.tokens_per_second > kf.tokens_per_second);
    }

    #[test]
    fn oom_behaviour_matches_table_1() {
        // Table 1: 4096+4096 with batch 2 and beam 4 runs out of memory under full
        // attention but fits with Keyformer's 50% cache.
        let m = model();
        let w = Workload::symmetric(4096)
            .with_batch_size(8)
            .with_beam_size(4);
        let full = m.estimate(&w, &CachePolicyCost::full_attention());
        let kf = m.estimate(&w, &CachePolicyCost::keyformer(0.5));
        assert!(!full.fits_in_memory);
        assert!(kf.peak_bytes < full.peak_bytes);
        assert_eq!(full.tokens_per_second, 0.0);
    }

    #[test]
    fn max_batch_size_grows_with_cache_reduction() {
        let m = model();
        let w = Workload::symmetric(4096).with_beam_size(4);
        let full = m.max_batch_size(&w, &CachePolicyCost::full_attention(), 64);
        let kf = m.max_batch_size(&w, &CachePolicyCost::keyformer(0.5), 64);
        assert!(kf.unwrap_or(0) >= 2 * full.unwrap_or(0).max(1));
    }

    #[test]
    fn zero_generation_has_empty_generation_phase() {
        let m = model();
        let w = Workload {
            prompt_len: 1024,
            generation_len: 0,
            batch_size: 1,
            beam_size: 1,
        };
        let est = m.estimate(&w, &CachePolicyCost::full_attention());
        assert_eq!(est.generation.total_s(), 0.0);
        assert!(est.prompt.total_s() > 0.0);
    }
}

//! Window attention and its dilated variant (Figure 2 b/c of the paper).

use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;
use crate::policy::{recent_slots, KvCachePolicy};

/// Sliding-window attention: keep only the `capacity` most recent tokens.
///
/// This is the cheapest possible cache-reduction policy and the paper's running
/// example of what goes wrong when distant context is discarded wholesale: ROUGE
/// collapses even at 90% cache (Figure 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowAttention;

impl WindowAttention {
    /// Creates the policy.
    pub fn new() -> Self {
        WindowAttention
    }
}

impl KvCachePolicy for WindowAttention {
    fn name(&self) -> &'static str {
        "window"
    }

    fn observe(&mut self, _obs: &AttentionObservation<'_>) {}

    fn select_retained(&mut self, _layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize> {
        recent_slots(live, budget.capacity())
    }

    fn compact(&mut self, _layer: usize, _retained: &[usize]) {}

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(*self)
    }
}

/// Dilated window attention: keep every `dilation + 1`-th slot counting back from the
/// newest token, up to `capacity` slots (Figure 2c).
///
/// With `dilation = 0` this degenerates to plain window attention.
#[derive(Debug, Clone, Copy)]
pub struct DilatedWindowAttention {
    dilation: usize,
}

impl DilatedWindowAttention {
    /// Creates a dilated window policy with the given dilation (gap between kept
    /// slots).
    pub fn new(dilation: usize) -> Self {
        DilatedWindowAttention { dilation }
    }

    /// The dilation (number of skipped slots between kept slots).
    pub fn dilation(&self) -> usize {
        self.dilation
    }
}

impl KvCachePolicy for DilatedWindowAttention {
    fn name(&self) -> &'static str {
        "dilated-window"
    }

    fn observe(&mut self, _obs: &AttentionObservation<'_>) {}

    fn select_retained(&mut self, _layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize> {
        let target = budget.capacity().min(live);
        if target == 0 {
            return Vec::new();
        }
        let stride = self.dilation + 1;
        let mut picked = Vec::with_capacity(target);
        let mut idx = live as isize - 1;
        while idx >= 0 && picked.len() < target {
            picked.push(idx as usize);
            idx -= stride as isize;
        }
        // If the strided walk ran out of history before filling the budget, top up
        // with the newest not-yet-picked slots so the cache always uses its capacity.
        if picked.len() < target {
            let mut in_set = vec![false; live];
            for &p in &picked {
                in_set[p] = true;
            }
            for i in (0..live).rev() {
                if picked.len() >= target {
                    break;
                }
                if !in_set[i] {
                    in_set[i] = true;
                    picked.push(i);
                }
            }
        }
        picked.sort_unstable();
        picked
    }

    fn compact(&mut self, _layer: usize, _retained: &[usize]) {}

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_keeps_suffix() {
        let mut p = WindowAttention::new();
        let budget = CacheBudget::new(3, 1);
        assert_eq!(p.select_retained(0, 10, &budget), vec![7, 8, 9]);
        assert_eq!(p.select_retained(0, 2, &budget), vec![0, 1]);
        assert_eq!(p.name(), "window");
    }

    #[test]
    fn dilated_window_skips_slots() {
        let mut p = DilatedWindowAttention::new(1);
        let budget = CacheBudget::new(3, 1);
        // Live slots 0..8, dilation 1 -> stride 2 from the newest: 7, 5, 3.
        assert_eq!(p.select_retained(0, 8, &budget), vec![3, 5, 7]);
        assert_eq!(p.dilation(), 1);
        assert_eq!(p.name(), "dilated-window");
    }

    #[test]
    fn dilation_zero_matches_window() {
        let mut dilated = DilatedWindowAttention::new(0);
        let mut window = WindowAttention::new();
        let budget = CacheBudget::new(4, 2);
        assert_eq!(
            dilated.select_retained(0, 9, &budget),
            window.select_retained(0, 9, &budget)
        );
    }

    #[test]
    fn dilated_window_tops_up_short_history() {
        let mut p = DilatedWindowAttention::new(3);
        let budget = CacheBudget::new(4, 1);
        // Stride 4 over 6 slots only reaches slots 5 and 1; top-up adds newest others.
        let sel = p.select_retained(0, 6, &budget);
        assert_eq!(sel.len(), 4);
        assert!(sel.contains(&5) && sel.contains(&1));
    }

    #[test]
    fn selections_are_sorted_unique_and_sized() {
        let mut p = DilatedWindowAttention::new(2);
        let budget = CacheBudget::new(5, 1);
        for live in 1..30 {
            let sel = p.select_retained(0, live, &budget);
            assert_eq!(sel.len(), budget.capacity().min(live));
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sel, sorted);
        }
    }
}

//! The policy zoo: every KV-cache reduction strategy evaluated in the paper.
//!
//! | Module | Paper name | Selection rule |
//! |---|---|---|
//! | [`full`] | Full Attention | never evicts (gold-standard baseline) |
//! | [`window`] | Window / Dilated Window Attention | most recent `k` slots (optionally dilated) |
//! | [`key_only`] | Key Attention (Figure 3c) | top-`k` slots by accumulated attention, no recent window |
//! | [`h2o`] | H2O heavy hitters | recent window + top accumulated softmax attention |
//! | [`damped`] | Damped score function (Figure 5) | H2O with the score multiplied by a damping factor α |
//! | [`streaming`] | StreamingLLM attention sinks | first `s` sink tokens + recent window |
//! | [`keyformer`] | **Keyformer** | recent window + top accumulated Gumbel-softmax score with temperature annealing |

pub mod damped;
pub mod full;
pub mod h2o;
pub mod key_only;
pub mod keyformer;
pub mod streaming;
pub mod window;

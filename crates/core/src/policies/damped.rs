//! The damped-score baseline of Section 2.3.3 / Figure 5.
//!
//! A straightforward attempt to fix H2O's post-eviction softmax shift is to multiply
//! the accumulated score by a damping factor `α ≤ 1`, counteracting the excess
//! probability mass the survivors inherit from discarded tokens. The paper sweeps
//! `α ∈ [0.875, 1.0]` and shows this is not sufficient to recover full-attention
//! quality — which is the motivation for the Gumbel-regularized score function.

use crate::accumulator::{ScoreAccumulator, ScoreScope};
use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;
use crate::policy::{merge_key_and_recent, KvCachePolicy};
use crate::CoreError;
use keyformer_tensor::ops::softmax;
use keyformer_tensor::top_k_indices;

/// H2O-style accumulated-attention scoring with a multiplicative damping factor
/// applied to the running score after every eviction round.
#[derive(Debug, Clone)]
pub struct DampedAttention {
    alpha: f32,
    accumulator: ScoreAccumulator,
}

impl DampedAttention {
    /// Creates the policy with damping factor `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `0 < alpha <= 1`.
    pub fn new(alpha: f32) -> Result<Self, CoreError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "damping factor {alpha} must be in (0, 1]"
            )));
        }
        Ok(DampedAttention {
            alpha,
            accumulator: ScoreAccumulator::new(ScoreScope::PerLayer),
        })
    }

    /// The damping factor α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl KvCachePolicy for DampedAttention {
    fn name(&self) -> &'static str {
        "damped"
    }

    fn observe(&mut self, obs: &AttentionObservation<'_>) {
        let mut probs = softmax(obs.logits);
        // Damp the per-step score before accumulating: \bar{f} = α f.
        for p in &mut probs {
            *p *= self.alpha;
        }
        self.accumulator.accumulate(obs.layer, &probs);
    }

    fn select_retained(&mut self, layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize> {
        let scores = self.accumulator.scores(layer, live);
        let target = budget.capacity().min(live);
        let recent = budget.recent_window().min(target);
        let key_region = live.saturating_sub(recent);
        let key_slots = top_k_indices(&scores[..key_region], target - recent.min(target));
        merge_key_and_recent(&key_slots, live, target, recent, &scores)
    }

    fn compact(&mut self, layer: usize, retained: &[usize]) {
        self.accumulator.compact(layer, retained);
    }

    fn reset(&mut self) {
        self.accumulator.reset();
    }

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Phase;

    fn observe(policy: &mut DampedAttention, logits: &[f32]) {
        policy.observe(&AttentionObservation {
            layer: 0,
            head: 0,
            phase: Phase::Generation,
            step: 0,
            total_steps: 4,
            logits,
        });
    }

    #[test]
    fn construction_validates_alpha() {
        assert!(DampedAttention::new(0.0).is_err());
        assert!(DampedAttention::new(1.5).is_err());
        assert!(DampedAttention::new(-0.5).is_err());
        let p = DampedAttention::new(0.9).unwrap();
        assert!((p.alpha() - 0.9).abs() < 1e-6);
        assert_eq!(p.name(), "damped");
    }

    #[test]
    fn alpha_one_matches_h2o_ranking() {
        let mut damped = DampedAttention::new(1.0).unwrap();
        let mut h2o = crate::policies::h2o::H2O::default();
        let logits = [3.0, 0.5, 0.1, 2.0, 0.2, 0.3];
        observe(&mut damped, &logits);
        h2o.observe(&AttentionObservation {
            layer: 0,
            head: 0,
            phase: Phase::Generation,
            step: 0,
            total_steps: 4,
            logits: &logits,
        });
        let budget = CacheBudget::new(3, 1);
        assert_eq!(
            damped.select_retained(0, 6, &budget),
            h2o.select_retained(0, 6, &budget)
        );
    }

    #[test]
    fn damping_scales_scores_but_preserves_order() {
        let mut strong = DampedAttention::new(1.0).unwrap();
        let mut weak = DampedAttention::new(0.875).unwrap();
        let logits = [3.0, 1.0, 0.5, 0.2];
        observe(&mut strong, &logits);
        observe(&mut weak, &logits);
        let budget = CacheBudget::new(2, 1);
        // With a single observation the ranking is unchanged; damping alone cannot
        // change which tokens are selected — exactly the paper's point.
        assert_eq!(
            strong.select_retained(0, 4, &budget),
            weak.select_retained(0, 4, &budget)
        );
    }

    #[test]
    fn compact_and_reset_round_trip() {
        let mut p = DampedAttention::new(0.9).unwrap();
        observe(&mut p, &[2.0, 1.0, 0.5, 0.1]);
        let sel = p.select_retained(0, 4, &CacheBudget::new(2, 1));
        p.compact(0, &sel);
        p.reset();
        let fresh = p.select_retained(0, 3, &CacheBudget::new(2, 1));
        assert_eq!(fresh.len(), 2);
    }
}

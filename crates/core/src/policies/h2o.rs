//! H2O (Heavy-Hitter Oracle): recent window + tokens with the highest accumulated
//! softmax attention score (Zhang et al., 2023). The strongest prior-work baseline
//! the paper compares against.

use crate::accumulator::{ScoreAccumulator, ScoreScope};
use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;
use crate::policy::{merge_key_and_recent, KvCachePolicy};
use keyformer_tensor::ops::softmax;
use keyformer_tensor::top_k_indices;
use serde::{Deserialize, Serialize};

/// Configuration for the [`H2O`] policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct H2OConfig {
    /// Accumulation scope (the paper's H2O baseline uses per-layer accumulation).
    pub scope: ScoreScope,
}

impl Default for H2OConfig {
    fn default() -> Self {
        H2OConfig {
            scope: ScoreScope::PerLayer,
        }
    }
}

/// The H2O heavy-hitter policy: keep the recent window plus the top-scoring remaining
/// tokens, where the score is the accumulated *softmax attention* — i.e. the
/// `fθ(acc attn)` score function of Section 2.3.1, with no logit regularization.
#[derive(Debug, Clone)]
pub struct H2O {
    config: H2OConfig,
    accumulator: ScoreAccumulator,
}

impl H2O {
    /// Creates an H2O policy with the given configuration.
    pub fn new(config: H2OConfig) -> Self {
        H2O {
            accumulator: ScoreAccumulator::new(config.scope),
            config,
        }
    }

    /// Configuration used to build this policy.
    pub fn config(&self) -> &H2OConfig {
        &self.config
    }

    /// Current accumulated scores for a layer (exposed for diagnostics and tests).
    pub fn scores(&self, layer: usize, live: usize) -> Vec<f32> {
        self.accumulator.scores(layer, live)
    }
}

impl Default for H2O {
    fn default() -> Self {
        Self::new(H2OConfig::default())
    }
}

impl KvCachePolicy for H2O {
    fn name(&self) -> &'static str {
        "h2o"
    }

    fn observe(&mut self, obs: &AttentionObservation<'_>) {
        // H2O accumulates the *normalized* attention scores. After eviction the
        // discarded probability mass redistributes over the survivors — the softmax
        // shift the Keyformer paper identifies as H2O's weakness (Figure 4).
        let probs = softmax(obs.logits);
        self.accumulator.accumulate(obs.layer, &probs);
    }

    fn select_retained(&mut self, layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize> {
        let scores = self.accumulator.scores(layer, live);
        let target = budget.capacity().min(live);
        let recent = budget.recent_window().min(target);
        let key_region = live.saturating_sub(recent);
        let key_slots = top_k_indices(&scores[..key_region], target - recent.min(target));
        merge_key_and_recent(&key_slots, live, target, recent, &scores)
    }

    fn compact(&mut self, layer: usize, retained: &[usize]) {
        self.accumulator.compact(layer, retained);
    }

    fn reset(&mut self) {
        self.accumulator.reset();
    }

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Phase;

    fn observe(policy: &mut H2O, layer: usize, logits: &[f32]) {
        policy.observe(&AttentionObservation {
            layer,
            head: 0,
            phase: Phase::Generation,
            step: 1,
            total_steps: 8,
            logits,
        });
    }

    #[test]
    fn keeps_recent_window_and_heavy_hitters() {
        let mut p = H2O::default();
        // Slot 1 is the heavy hitter; slots 6,7 are most recent.
        observe(&mut p, 0, &[0.0, 6.0, 0.0, 0.0, 0.0, 0.0, 0.1, 0.1]);
        let budget = CacheBudget::new(4, 2);
        let sel = p.select_retained(0, 8, &budget);
        assert_eq!(sel.len(), 4);
        assert!(sel.contains(&1));
        assert!(sel.contains(&6) && sel.contains(&7));
    }

    #[test]
    fn accumulation_across_steps_beats_single_spike() {
        let mut p = H2O::default();
        // Slot 0 gets consistent moderate attention; slot 2 a single spike.
        for _ in 0..5 {
            observe(&mut p, 0, &[2.0, 0.0, 0.0, 0.0, 0.0]);
        }
        observe(&mut p, 0, &[0.0, 0.0, 4.0, 0.0, 0.0]);
        let budget = CacheBudget::new(2, 1);
        let sel = p.select_retained(0, 5, &budget);
        assert!(
            sel.contains(&0),
            "consistently attended token must win: {sel:?}"
        );
    }

    #[test]
    fn selection_length_matches_budget_even_with_overlap() {
        let mut p = H2O::default();
        observe(&mut p, 0, &[0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
        let budget = CacheBudget::new(3, 3);
        let sel = p.select_retained(0, 6, &budget);
        assert_eq!(sel, vec![3, 4, 5]);
    }

    #[test]
    fn shared_scope_uses_global_scores() {
        let mut p = H2O::new(H2OConfig {
            scope: ScoreScope::Shared,
        });
        observe(&mut p, 0, &[5.0, 0.0, 0.0, 0.0]);
        observe(&mut p, 3, &[5.0, 0.0, 0.0, 0.0]);
        // Layer 7 never observed anything, but the shared accumulator still ranks
        // slot 0 first.
        let sel = p.select_retained(7, 4, &CacheBudget::new(2, 1));
        assert!(sel.contains(&0));
        assert_eq!(p.config().scope, ScoreScope::Shared);
    }

    #[test]
    fn compact_then_select_is_consistent() {
        let mut p = H2O::default();
        observe(&mut p, 0, &[4.0, 3.0, 0.0, 0.0, 1.0, 1.0]);
        let budget = CacheBudget::new(4, 2);
        let sel = p.select_retained(0, 6, &budget);
        p.compact(0, &sel);
        // Old slots 0 and 1 are now slots 0 and 1 of the compacted cache and should
        // still dominate the scores.
        let scores = p.scores(0, 4);
        assert!(scores[0] > scores[2] && scores[1] > scores[3]);
    }

    #[test]
    fn reset_and_name() {
        let mut p = H2O::default();
        observe(&mut p, 0, &[1.0, 0.0]);
        p.reset();
        assert_eq!(p.scores(0, 2), vec![0.0, 0.0]);
        assert_eq!(p.name(), "h2o");
    }
}

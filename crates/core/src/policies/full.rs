//! Full attention: the gold-standard baseline that never evicts.

use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;
use crate::policy::{all_slots, KvCachePolicy};

/// The paper's accuracy baseline: every token stays in the KV cache.
///
/// `select_retained` ignores the budget and returns all live slots, so a model wired
/// to this policy behaves exactly like an unmodified decoder. This is the reference
/// every other policy's ROUGE numbers are measured against (the MLPerf 99% band).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullAttention;

impl FullAttention {
    /// Creates the policy.
    pub fn new() -> Self {
        FullAttention
    }
}

impl KvCachePolicy for FullAttention {
    fn name(&self) -> &'static str {
        "full"
    }

    fn observe(&mut self, _obs: &AttentionObservation<'_>) {}

    fn select_retained(&mut self, _layer: usize, live: usize, _budget: &CacheBudget) -> Vec<usize> {
        all_slots(live)
    }

    fn compact(&mut self, _layer: usize, _retained: &[usize]) {}

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Phase;

    #[test]
    fn never_evicts() {
        let mut p = FullAttention::new();
        let budget = CacheBudget::new(4, 2);
        assert_eq!(
            p.select_retained(0, 10, &budget),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(p.name(), "full");
    }

    #[test]
    fn observe_and_compact_are_noops() {
        let mut p = FullAttention::new();
        let logits = [1.0, 2.0];
        p.observe(&AttentionObservation {
            layer: 0,
            head: 0,
            phase: Phase::Prompt,
            step: 0,
            total_steps: 1,
            logits: &logits,
        });
        p.compact(0, &[0]);
        p.reset();
        let budget = CacheBudget::new(1, 1);
        assert_eq!(p.select_retained(0, 2, &budget), vec![0, 1]);
    }
}

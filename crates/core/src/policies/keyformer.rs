//! The Keyformer policy (Section 3 / Algorithm 1 of the paper).
//!
//! At every decode step, for every head, Keyformer:
//!
//! 1. takes the unnormalized logits `x_i = q·k_i/√d` against the live cache slots,
//! 2. adds regularization noise `ζ_i` (standard Gumbel by default, Equation 4),
//! 3. applies a softmax with temperature `τ` annealed from `τ_init` to `τ_end`
//!    across the generation (Equations 9–10),
//! 4. accumulates the result into a per-layer (or shared) score function `fθ`.
//!
//! When the cache exceeds its budget, the most recent `w` slots are kept
//! unconditionally and the remaining `k − w` slots are the top-scoring *key tokens*
//! from everything older than the recent window.

use crate::accumulator::{ScoreAccumulator, ScoreScope};
use crate::adjustment::LogitAdjustment;
use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;
use crate::policy::{merge_key_and_recent, KvCachePolicy};
use crate::temperature::TemperatureSchedule;
use crate::CoreError;
use keyformer_tensor::ops::softmax_with_temperature;
use keyformer_tensor::top_k_indices;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the [`Keyformer`] policy.
///
/// The defaults reproduce the paper's recommended setting: Gumbel logit adjustment,
/// `τ` annealed linearly from 1 to 2, per-layer score accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyformerConfig {
    /// Distribution added to the unnormalized logits before scoring.
    pub adjustment: LogitAdjustment,
    /// Temperature schedule for the Gumbel softmax score function.
    pub temperature: TemperatureSchedule,
    /// Per-layer or shared score accumulation (Table 3 ablation).
    pub scope: ScoreScope,
    /// Seed for the noise PRNG, making every run reproducible.
    pub seed: u64,
}

impl Default for KeyformerConfig {
    fn default() -> Self {
        KeyformerConfig {
            adjustment: LogitAdjustment::Gumbel,
            temperature: TemperatureSchedule::default(),
            scope: ScoreScope::PerLayer,
            seed: 0x5eed_0000_c0de,
        }
    }
}

impl KeyformerConfig {
    /// Replaces the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the logit-adjustment distribution.
    pub fn with_adjustment(mut self, adjustment: LogitAdjustment) -> Self {
        self.adjustment = adjustment;
        self
    }

    /// Replaces the temperature schedule.
    pub fn with_temperature(mut self, temperature: TemperatureSchedule) -> Self {
        self.temperature = temperature;
        self
    }

    /// Replaces the accumulation scope.
    pub fn with_scope(mut self, scope: ScoreScope) -> Self {
        self.scope = scope;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the temperature schedule is invalid.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.temperature.validate()
    }
}

/// The Keyformer KV-cache policy.
#[derive(Debug, Clone)]
pub struct Keyformer {
    config: KeyformerConfig,
    accumulator: ScoreAccumulator,
    rng: StdRng,
}

impl Keyformer {
    /// Creates a Keyformer policy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`KeyformerConfig::validate`] to
    /// check first when the configuration is user-supplied.
    pub fn new(config: KeyformerConfig) -> Self {
        config.validate().expect("invalid Keyformer configuration");
        Keyformer {
            accumulator: ScoreAccumulator::new(config.scope),
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The configuration this policy was built with.
    pub fn config(&self) -> &KeyformerConfig {
        &self.config
    }

    /// Current accumulated scores for a layer (exposed for diagnostics, the harness
    /// and tests).
    pub fn scores(&self, layer: usize, live: usize) -> Vec<f32> {
        self.accumulator.scores(layer, live)
    }

    /// Computes one step's (un-accumulated) score contribution for a set of logits:
    /// noise-adjusted, temperature-scaled softmax. Exposed so the diagnostics module
    /// and the benches can measure the score function in isolation.
    pub fn step_scores(&mut self, obs: &AttentionObservation<'_>) -> Vec<f32> {
        let adjusted = self.config.adjustment.adjust(obs.logits, &mut self.rng);
        let tau = self
            .config
            .temperature
            .tau(obs.phase, obs.step, obs.total_steps);
        softmax_with_temperature(&adjusted, tau)
    }
}

impl Default for Keyformer {
    fn default() -> Self {
        Self::new(KeyformerConfig::default())
    }
}

impl KvCachePolicy for Keyformer {
    fn name(&self) -> &'static str {
        "keyformer"
    }

    fn observe(&mut self, obs: &AttentionObservation<'_>) {
        if obs.logits.is_empty() {
            return;
        }
        let contribution = self.step_scores(obs);
        self.accumulator.accumulate(obs.layer, &contribution);
    }

    fn select_retained(&mut self, layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize> {
        let scores = self.accumulator.scores(layer, live);
        let target = budget.capacity().min(live);
        let recent = budget.recent_window().min(target);
        // Key tokens are drawn from everything *older* than the recent window
        // (Algorithm 1: Skey = argmax_{k-w} fθ[ : -w]).
        let key_region = live.saturating_sub(recent);
        let key_slots = top_k_indices(&scores[..key_region], target - recent.min(target));
        merge_key_and_recent(&key_slots, live, target, recent, &scores)
    }

    fn compact(&mut self, layer: usize, retained: &[usize]) {
        self.accumulator.compact(layer, retained);
    }

    fn reset(&mut self) {
        self.accumulator.reset();
        self.rng = StdRng::seed_from_u64(self.config.seed);
    }

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Phase;

    fn obs(logits: &[f32], step: usize, phase: Phase) -> AttentionObservation<'_> {
        AttentionObservation {
            layer: 0,
            head: 0,
            phase,
            step,
            total_steps: 10,
            logits,
        }
    }

    #[test]
    fn default_config_is_paper_setting() {
        let c = KeyformerConfig::default();
        assert_eq!(c.adjustment, LogitAdjustment::Gumbel);
        assert_eq!(c.scope, ScoreScope::PerLayer);
        assert_eq!(
            c.temperature,
            TemperatureSchedule::Linear {
                tau_init: 1.0,
                tau_end: 2.0
            }
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_compose() {
        let c = KeyformerConfig::default()
            .with_seed(9)
            .with_adjustment(LogitAdjustment::None)
            .with_scope(ScoreScope::Shared)
            .with_temperature(TemperatureSchedule::Static(1.5));
        assert_eq!(c.seed, 9);
        assert_eq!(c.adjustment, LogitAdjustment::None);
        assert_eq!(c.scope, ScoreScope::Shared);
        assert_eq!(c.temperature, TemperatureSchedule::Static(1.5));
    }

    #[test]
    fn recent_window_is_always_retained() {
        let mut p = Keyformer::default();
        let logits = [0.5, 4.0, 0.1, 0.2, 0.05, 0.05];
        p.observe(&obs(&logits, 0, Phase::Prompt));
        let budget = CacheBudget::new(4, 2);
        let sel = p.select_retained(0, 6, &budget);
        assert_eq!(sel.len(), 4);
        assert!(
            sel.contains(&4) && sel.contains(&5),
            "recent window lost: {sel:?}"
        );
    }

    #[test]
    fn dominant_early_token_is_identified_as_key_token() {
        let mut p = Keyformer::default();
        // Slot 1 consistently dominates across several steps; noise must not bury it.
        for step in 0..6 {
            let logits = [0.1, 8.0, 0.0, 0.2, 0.1, 0.0, 0.1, 0.05];
            p.observe(&obs(&logits, step, Phase::Generation));
        }
        let budget = CacheBudget::new(4, 2);
        let sel = p.select_retained(0, 8, &budget);
        assert!(sel.contains(&1), "key token lost: {sel:?}");
    }

    #[test]
    fn runs_are_reproducible_for_equal_seeds() {
        let run = |seed: u64| {
            let mut p = Keyformer::new(KeyformerConfig::default().with_seed(seed));
            for step in 0..5 {
                let logits: Vec<f32> = (0..12).map(|i| ((i * 7 + step) % 5) as f32 * 0.3).collect();
                p.observe(&obs(&logits, step, Phase::Generation));
            }
            p.select_retained(0, 12, &CacheBudget::new(6, 2))
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn selection_has_exact_budget_size() {
        let mut p = Keyformer::default();
        for live in [5usize, 9, 17, 33] {
            let logits: Vec<f32> = (0..live).map(|i| (i % 7) as f32 * 0.1).collect();
            p.observe(&obs(&logits, 1, Phase::Generation));
            let budget = CacheBudget::new(8, 3);
            let sel = p.select_retained(0, live, &budget);
            assert_eq!(sel.len(), budget.capacity().min(live));
        }
    }

    #[test]
    fn shared_scope_compacts_once_and_stays_consistent() {
        let mut p = Keyformer::new(KeyformerConfig::default().with_scope(ScoreScope::Shared));
        let logits = [3.0, 0.1, 0.1, 0.1, 0.1];
        for layer in 0..3 {
            p.observe(&AttentionObservation {
                layer,
                head: 0,
                phase: Phase::Prompt,
                step: 0,
                total_steps: 4,
                logits: &logits,
            });
        }
        let budget = CacheBudget::new(3, 1);
        let sel = p.select_retained(0, 5, &budget);
        assert!(sel.contains(&0));
        // Compacting via layer 0 compacts the shared bucket exactly once.
        p.compact(0, &sel);
        assert_eq!(p.scores(2, 3).len(), 3);
    }

    #[test]
    fn no_adjustment_and_static_tau_one_reduces_to_h2o_scores() {
        // With ζ = 0 and τ = 1 the Keyformer score function degenerates to plain
        // accumulated softmax attention — the H2O score (Section 2.3.1).
        let mut kf = Keyformer::new(
            KeyformerConfig::default()
                .with_adjustment(LogitAdjustment::None)
                .with_temperature(TemperatureSchedule::Static(1.0)),
        );
        let mut h2o = crate::policies::h2o::H2O::default();
        let logits = [2.0, 0.3, 1.0, 0.1, 0.4];
        kf.observe(&obs(&logits, 0, Phase::Generation));
        h2o.observe(&obs(&logits, 0, Phase::Generation));
        let ks = kf.scores(0, 5);
        let hs = h2o.scores(0, 5);
        for (a, b) in ks.iter().zip(&hs) {
            assert!((a - b).abs() < 1e-5, "{ks:?} vs {hs:?}");
        }
    }

    #[test]
    fn reset_restores_reproducibility() {
        let mut p = Keyformer::new(KeyformerConfig::default().with_seed(77));
        let logits = [1.0, 0.5, 2.0, 0.2];
        p.observe(&obs(&logits, 0, Phase::Generation));
        let first = p.scores(0, 4);
        p.reset();
        p.observe(&obs(&logits, 0, Phase::Generation));
        let second = p.scores(0, 4);
        assert_eq!(first, second);
        assert_eq!(p.name(), "keyformer");
    }

    #[test]
    fn empty_observation_is_ignored() {
        let mut p = Keyformer::default();
        p.observe(&obs(&[], 0, Phase::Prompt));
        assert_eq!(p.scores(0, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid Keyformer configuration")]
    fn invalid_temperature_panics_on_construction() {
        Keyformer::new(
            KeyformerConfig::default().with_temperature(TemperatureSchedule::Static(0.0)),
        );
    }
}

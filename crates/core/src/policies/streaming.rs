//! StreamingLLM-style attention sinks (Xiao et al., 2023), the Table 3 baseline.
//!
//! StreamingLLM keeps the first few "attention sink" tokens plus a sliding window of
//! recent tokens. The paper shows this collapses on summarization because the sinks
//! carry no task content (Appendix A.7).

use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;
use crate::policy::KvCachePolicy;

/// Attention-sink policy: retain the first `num_sinks` *original* tokens plus the most
/// recent `capacity - num_sinks` tokens.
///
/// Sinks are tracked by original position (via an internal map updated on
/// compaction), so they survive repeated eviction rounds the way StreamingLLM's
/// first-four-token rule intends.
#[derive(Debug, Clone)]
pub struct StreamingLlm {
    num_sinks: usize,
    /// Original sequence position of each live slot, per layer. Grows lazily as
    /// observations arrive and is compacted alongside the cache.
    positions: Vec<Vec<usize>>,
    /// Next original position to assign per layer (monotone counter).
    next_position: Vec<usize>,
}

impl StreamingLlm {
    /// Default number of sink tokens used by StreamingLLM.
    pub const DEFAULT_SINKS: usize = 4;

    /// Creates the policy with the given number of sink tokens.
    pub fn new(num_sinks: usize) -> Self {
        StreamingLlm {
            num_sinks,
            positions: Vec::new(),
            next_position: Vec::new(),
        }
    }

    /// Number of sink tokens retained at the start of the sequence.
    pub fn num_sinks(&self) -> usize {
        self.num_sinks
    }

    fn sync_layer(&mut self, layer: usize, live: usize) {
        if self.positions.len() <= layer {
            self.positions.resize_with(layer + 1, Vec::new);
            self.next_position.resize(layer + 1, 0);
        }
        let tracked = &mut self.positions[layer];
        let next = &mut self.next_position[layer];
        while tracked.len() < live {
            tracked.push(*next);
            *next += 1;
        }
    }
}

impl Default for StreamingLlm {
    fn default() -> Self {
        Self::new(Self::DEFAULT_SINKS)
    }
}

impl KvCachePolicy for StreamingLlm {
    fn name(&self) -> &'static str {
        "streaming-llm"
    }

    fn observe(&mut self, obs: &AttentionObservation<'_>) {
        self.sync_layer(obs.layer, obs.live_slots());
    }

    fn select_retained(&mut self, layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize> {
        self.sync_layer(layer, live);
        let target = budget.capacity().min(live);
        let positions = &self.positions[layer];
        let sinks = self.num_sinks.min(target);
        let mut keep = vec![false; live];
        let mut kept = 0;
        // Keep slots whose original position is within the sink range.
        for (slot, &pos) in positions.iter().enumerate().take(live) {
            if pos < sinks {
                keep[slot] = true;
                kept += 1;
            }
        }
        // Fill the remainder with the most recent slots.
        for slot in (0..live).rev() {
            if kept >= target {
                break;
            }
            if !keep[slot] {
                keep[slot] = true;
                kept += 1;
            }
        }
        let mut selected: Vec<usize> = (0..live).filter(|&i| keep[i]).collect();
        selected.truncate(target);
        selected
    }

    fn compact(&mut self, layer: usize, retained: &[usize]) {
        if let Some(tracked) = self.positions.get_mut(layer) {
            *tracked = retained
                .iter()
                .filter_map(|&i| tracked.get(i).copied())
                .collect();
        }
    }

    fn reset(&mut self) {
        self.positions.clear();
        self.next_position.clear();
    }

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Phase;

    fn observe(policy: &mut StreamingLlm, layer: usize, live: usize) {
        let logits = vec![0.0; live];
        policy.observe(&AttentionObservation {
            layer,
            head: 0,
            phase: Phase::Generation,
            step: 0,
            total_steps: 4,
            logits: &logits,
        });
    }

    #[test]
    fn keeps_sinks_and_recent_window() {
        let mut p = StreamingLlm::new(2);
        observe(&mut p, 0, 10);
        let budget = CacheBudget::new(5, 3);
        let sel = p.select_retained(0, 10, &budget);
        assert_eq!(sel, vec![0, 1, 7, 8, 9]);
        assert_eq!(p.num_sinks(), 2);
    }

    #[test]
    fn sinks_survive_repeated_compaction() {
        let mut p = StreamingLlm::new(2);
        observe(&mut p, 0, 10);
        let budget = CacheBudget::new(5, 3);
        let sel = p.select_retained(0, 10, &budget);
        p.compact(0, &sel);
        // One new token arrives; cache is now 6 slots; original sinks are slots 0,1.
        observe(&mut p, 0, 6);
        let sel2 = p.select_retained(0, 6, &budget);
        assert!(
            sel2.contains(&0) && sel2.contains(&1),
            "sinks lost: {sel2:?}"
        );
        assert_eq!(sel2.len(), 5);
    }

    #[test]
    fn budget_smaller_than_sinks_degrades_gracefully() {
        let mut p = StreamingLlm::new(4);
        observe(&mut p, 0, 8);
        let budget = CacheBudget::new(2, 1);
        let sel = p.select_retained(0, 8, &budget);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn default_uses_four_sinks() {
        let p = StreamingLlm::default();
        assert_eq!(p.num_sinks(), StreamingLlm::DEFAULT_SINKS);
        assert_eq!(p.name(), "streaming-llm");
    }

    #[test]
    fn layers_track_positions_independently() {
        let mut p = StreamingLlm::new(1);
        observe(&mut p, 0, 5);
        observe(&mut p, 2, 3);
        let budget = CacheBudget::new(2, 1);
        assert_eq!(p.select_retained(0, 5, &budget), vec![0, 4]);
        assert_eq!(p.select_retained(2, 3, &budget), vec![0, 2]);
    }

    #[test]
    fn reset_forgets_positions() {
        let mut p = StreamingLlm::new(2);
        observe(&mut p, 0, 6);
        let sel = p.select_retained(0, 6, &CacheBudget::new(3, 1));
        p.compact(0, &sel);
        p.reset();
        observe(&mut p, 0, 4);
        let sel2 = p.select_retained(0, 4, &CacheBudget::new(3, 1));
        assert_eq!(sel2, vec![0, 1, 3]);
    }
}

//! "Key Attention": top-k tokens by accumulated attention score, with no recent
//! window. This is the strawman of Figure 3c — it loses recent context and therefore
//! underperforms despite keeping the highest-attention tokens.

use crate::accumulator::{ScoreAccumulator, ScoreScope};
use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;
use crate::policy::KvCachePolicy;
use keyformer_tensor::ops::softmax;
use keyformer_tensor::top_k_indices;

/// Pure key-token attention: retain the `capacity` slots with the highest accumulated
/// softmax attention score and nothing else.
#[derive(Debug, Clone)]
pub struct KeyOnlyAttention {
    accumulator: ScoreAccumulator,
}

impl KeyOnlyAttention {
    /// Creates the policy with a per-layer score accumulator.
    pub fn new() -> Self {
        KeyOnlyAttention {
            accumulator: ScoreAccumulator::new(ScoreScope::PerLayer),
        }
    }
}

impl Default for KeyOnlyAttention {
    fn default() -> Self {
        Self::new()
    }
}

impl KvCachePolicy for KeyOnlyAttention {
    fn name(&self) -> &'static str {
        "key-only"
    }

    fn observe(&mut self, obs: &AttentionObservation<'_>) {
        let probs = softmax(obs.logits);
        self.accumulator.accumulate(obs.layer, &probs);
    }

    fn select_retained(&mut self, layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize> {
        let scores = self.accumulator.scores(layer, live);
        top_k_indices(&scores, budget.capacity().min(live))
    }

    fn compact(&mut self, layer: usize, retained: &[usize]) {
        self.accumulator.compact(layer, retained);
    }

    fn reset(&mut self) {
        self.accumulator.reset();
    }

    fn clone_box(&self) -> Box<dyn KvCachePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Phase;

    fn observe(policy: &mut KeyOnlyAttention, layer: usize, logits: &[f32]) {
        policy.observe(&AttentionObservation {
            layer,
            head: 0,
            phase: Phase::Prompt,
            step: 0,
            total_steps: 4,
            logits,
        });
    }

    #[test]
    fn keeps_highest_scoring_slots_regardless_of_recency() {
        let mut p = KeyOnlyAttention::new();
        // Slot 0 dominates attention; slots 3 and 4 are the most recent.
        observe(&mut p, 0, &[5.0, 0.0, 0.0, 0.1, 0.1]);
        observe(&mut p, 0, &[5.0, 0.0, 0.0, 0.1, 0.1]);
        let budget = CacheBudget::new(2, 1);
        let sel = p.select_retained(0, 5, &budget);
        assert!(sel.contains(&0), "dominant early token must survive");
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn compaction_remaps_scores() {
        let mut p = KeyOnlyAttention::new();
        observe(&mut p, 0, &[3.0, 0.0, 2.9, 0.0]);
        let budget = CacheBudget::new(2, 1);
        let sel = p.select_retained(0, 4, &budget);
        assert_eq!(sel, vec![0, 2]);
        p.compact(0, &sel);
        // After compaction the two survivors occupy slots 0 and 1; another eviction
        // round must still rank the old slot 0 first.
        let sel2 = p.select_retained(0, 2, &CacheBudget::new(1, 1));
        assert_eq!(sel2, vec![0]);
    }

    #[test]
    fn layers_are_scored_independently() {
        let mut p = KeyOnlyAttention::new();
        observe(&mut p, 0, &[5.0, 0.0, 0.0]);
        observe(&mut p, 1, &[0.0, 0.0, 5.0]);
        let budget = CacheBudget::new(1, 1);
        assert_eq!(p.select_retained(0, 3, &budget), vec![0]);
        assert_eq!(p.select_retained(1, 3, &budget), vec![2]);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = KeyOnlyAttention::new();
        observe(&mut p, 0, &[5.0, 0.0]);
        p.reset();
        // With no observations scores are all zero; ties resolve to earliest indices.
        let sel = p.select_retained(0, 4, &CacheBudget::new(2, 1));
        assert_eq!(sel, vec![0, 1]);
        assert_eq!(p.name(), "key-only");
    }
}

//! The KV cache: per-layer storage of key/value vectors for every retained token slot.
//!
//! The cache stores *unrotated* keys together with each token's original sequence
//! position. Positional encodings (RoPE / ALiBi) are applied by the attention module
//! at read time, which is what lets the reproduction switch between the paper's
//! "original position" and "new position" ablations (Table 3) without recomputing
//! keys.

use crate::CoreError;
use keyformer_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Key/value storage for a single decoder layer.
///
/// Slots are kept in insertion order; `positions[i]` records the original sequence
/// position of slot `i`. Per head, `keys[head]` and `values[head]` are
/// `(n_slots, head_dim)` matrices whose rows parallel the slot order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerKvCache {
    num_heads: usize,
    head_dim: usize,
    keys: Vec<Matrix>,
    values: Vec<Matrix>,
    positions: Vec<usize>,
}

impl LayerKvCache {
    /// Creates an empty per-layer cache for `num_heads` heads of width `head_dim`.
    pub fn new(num_heads: usize, head_dim: usize) -> Self {
        LayerKvCache {
            num_heads,
            head_dim,
            keys: (0..num_heads).map(|_| Matrix::zeros(0, 0)).collect(),
            values: (0..num_heads).map(|_| Matrix::zeros(0, 0)).collect(),
            positions: Vec::new(),
        }
    }

    /// Number of live token slots.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when no slots are stored.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of attention heads this cache serves.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head key/value vector width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Original sequence positions of the live slots, in slot order.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Key matrix of `head` with one row per live slot.
    ///
    /// # Panics
    ///
    /// Panics if `head >= num_heads`.
    pub fn keys(&self, head: usize) -> &Matrix {
        &self.keys[head]
    }

    /// Value matrix of `head` with one row per live slot.
    ///
    /// # Panics
    ///
    /// Panics if `head >= num_heads`.
    pub fn values(&self, head: usize) -> &Matrix {
        &self.values[head]
    }

    /// Appends one token's per-head key and value vectors.
    ///
    /// `keys_per_head[h]` and `values_per_head[h]` must each have length `head_dim`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the number of heads or any vector
    /// length is wrong.
    pub fn append(
        &mut self,
        position: usize,
        keys_per_head: &[Vec<f32>],
        values_per_head: &[Vec<f32>],
    ) -> Result<(), CoreError> {
        if keys_per_head.len() != self.num_heads || values_per_head.len() != self.num_heads {
            return Err(CoreError::InvalidConfig(format!(
                "expected {} heads, got {} keys / {} values",
                self.num_heads,
                keys_per_head.len(),
                values_per_head.len()
            )));
        }
        for (k, v) in keys_per_head.iter().zip(values_per_head) {
            if k.len() != self.head_dim || v.len() != self.head_dim {
                return Err(CoreError::InvalidConfig(format!(
                    "expected head_dim {}, got key {} / value {}",
                    self.head_dim,
                    k.len(),
                    v.len()
                )));
            }
        }
        for h in 0..self.num_heads {
            self.keys[h].push_row(&keys_per_head[h]);
            self.values[h].push_row(&values_per_head[h]);
        }
        self.positions.push(position);
        Ok(())
    }

    /// Compacts the cache down to the given slot indices.
    ///
    /// `retained` must be sorted, unique and in-bounds; this is the contract policies
    /// must satisfy in [`crate::policy::KvCachePolicy::select_retained`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSelection`] if the contract is violated.
    pub fn retain_slots(&mut self, retained: &[usize]) -> Result<(), CoreError> {
        validate_selection(retained, self.len())?;
        for h in 0..self.num_heads {
            self.keys[h] = self.keys[h].gather_rows(retained);
            self.values[h] = self.values[h].gather_rows(retained);
        }
        self.positions = retained.iter().map(|&i| self.positions[i]).collect();
        Ok(())
    }

    /// Removes every slot.
    pub fn clear(&mut self) {
        for h in 0..self.num_heads {
            self.keys[h] = Matrix::zeros(0, 0);
            self.values[h] = Matrix::zeros(0, 0);
        }
        self.positions.clear();
    }

    /// Approximate memory footprint of the stored keys and values, in bytes.
    ///
    /// This is the quantity the paper's Figure 1(b) tracks (KV-cache size vs. model
    /// size) and the input to the data-movement model in `keyformer-perf`.
    pub fn byte_size(&self) -> usize {
        self.keys
            .iter()
            .chain(self.values.iter())
            .map(Matrix::byte_size)
            .sum()
    }

    /// Bytes one retained token slot occupies in this layer (keys + values across
    /// every head), independent of how many slots are currently live. This is the
    /// unit the serving layer's memory-aware admission multiplies by a projected
    /// slot count.
    pub fn bytes_per_slot(&self) -> usize {
        2 * self.num_heads * self.head_dim * std::mem::size_of::<f32>()
    }
}

/// The full KV cache of a decoder stack: one [`LayerKvCache`] per layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
}

impl KvCache {
    /// Creates an empty cache for `num_layers` layers, each with `num_heads` heads of
    /// width `head_dim`.
    pub fn new(num_layers: usize, num_heads: usize, head_dim: usize) -> Self {
        KvCache {
            layers: (0..num_layers)
                .map(|_| LayerKvCache::new(num_heads, head_dim))
                .collect(),
        }
    }

    /// Number of decoder layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow of a layer's cache.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn layer(&self, layer: usize) -> &LayerKvCache {
        &self.layers[layer]
    }

    /// Mutable borrow of a layer's cache.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerKvCache {
        &mut self.layers[layer]
    }

    /// Iterator over layer caches.
    pub fn iter(&self) -> impl Iterator<Item = &LayerKvCache> {
        self.layers.iter()
    }

    /// Total number of live slots summed over layers.
    pub fn total_slots(&self) -> usize {
        self.layers.iter().map(LayerKvCache::len).sum()
    }

    /// Total byte footprint summed over layers.
    pub fn byte_size(&self) -> usize {
        self.layers.iter().map(LayerKvCache::byte_size).sum()
    }

    /// Bytes one cached token occupies across every layer (keys + values). A cache
    /// holding `n` slots in each layer occupies exactly `n * bytes_per_token()`
    /// bytes; the serving layer uses this to project a request's steady-state
    /// footprint before admitting it.
    pub fn bytes_per_token(&self) -> usize {
        self.layers.iter().map(LayerKvCache::bytes_per_slot).sum()
    }

    /// Clears every layer.
    pub fn clear(&mut self) {
        for layer in &mut self.layers {
            layer.clear();
        }
    }
}

/// Validates the retained-slot contract: sorted, unique, in-bounds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSelection`] describing the first violation found.
pub fn validate_selection(retained: &[usize], live: usize) -> Result<(), CoreError> {
    let mut prev: Option<usize> = None;
    for &idx in retained {
        if idx >= live {
            return Err(CoreError::InvalidSelection(format!(
                "slot {idx} out of bounds for cache of {live} slots"
            )));
        }
        if let Some(p) = prev {
            if idx <= p {
                return Err(CoreError::InvalidSelection(format!(
                    "retained slots must be strictly increasing, saw {p} then {idx}"
                )));
            }
        }
        prev = Some(idx);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_layer(slots: usize) -> LayerKvCache {
        let mut layer = LayerKvCache::new(2, 3);
        for i in 0..slots {
            let k = vec![vec![i as f32; 3], vec![i as f32 + 0.5; 3]];
            let v = vec![vec![10.0 + i as f32; 3], vec![20.0 + i as f32; 3]];
            layer.append(i, &k, &v).unwrap();
        }
        layer
    }

    #[test]
    fn append_grows_all_heads() {
        let layer = filled_layer(4);
        assert_eq!(layer.len(), 4);
        assert_eq!(layer.keys(0).shape(), (4, 3));
        assert_eq!(layer.values(1).shape(), (4, 3));
        assert_eq!(layer.positions(), &[0, 1, 2, 3]);
    }

    #[test]
    fn append_validates_shapes() {
        let mut layer = LayerKvCache::new(2, 3);
        // Wrong number of heads.
        assert!(layer.append(0, &[vec![0.0; 3]], &[vec![0.0; 3]]).is_err());
        // Wrong head_dim.
        assert!(layer
            .append(
                0,
                &[vec![0.0; 2], vec![0.0; 3]],
                &[vec![0.0; 3], vec![0.0; 3]]
            )
            .is_err());
    }

    #[test]
    fn retain_slots_compacts_keys_values_positions() {
        let mut layer = filled_layer(5);
        layer.retain_slots(&[0, 3, 4]).unwrap();
        assert_eq!(layer.len(), 3);
        assert_eq!(layer.positions(), &[0, 3, 4]);
        assert_eq!(layer.keys(0).row(1), &[3.0, 3.0, 3.0]);
        assert_eq!(layer.values(1).row(2), &[24.0, 24.0, 24.0]);
    }

    #[test]
    fn retain_slots_rejects_bad_selections() {
        let mut layer = filled_layer(3);
        assert!(layer.retain_slots(&[0, 5]).is_err());
        assert!(layer.retain_slots(&[1, 1]).is_err());
        assert!(layer.retain_slots(&[2, 1]).is_err());
        // A valid empty selection clears the cache.
        layer.retain_slots(&[]).unwrap();
        assert!(layer.is_empty());
    }

    #[test]
    fn byte_size_tracks_slots() {
        let layer = filled_layer(4);
        // 2 heads * (keys + values) * 4 slots * 3 dims * 4 bytes.
        assert_eq!(layer.byte_size(), 2 * 2 * 4 * 3 * 4);
    }

    #[test]
    fn bytes_per_slot_matches_observed_growth() {
        let layer = filled_layer(4);
        assert_eq!(layer.byte_size(), 4 * layer.bytes_per_slot());
        let empty = LayerKvCache::new(2, 3);
        assert_eq!(empty.bytes_per_slot(), layer.bytes_per_slot());
    }

    #[test]
    fn bytes_per_token_sums_layers() {
        let mut cache = KvCache::new(3, 2, 3);
        assert_eq!(cache.bytes_per_token(), 3 * 2 * 2 * 3 * 4);
        for l in 0..3 {
            let k = vec![vec![0.0; 3], vec![0.0; 3]];
            let v = k.clone();
            cache.layer_mut(l).append(0, &k, &v).unwrap();
        }
        assert_eq!(cache.byte_size(), cache.bytes_per_token());
    }

    #[test]
    fn clear_empties_layer() {
        let mut layer = filled_layer(3);
        layer.clear();
        assert!(layer.is_empty());
        assert_eq!(layer.byte_size(), 0);
    }

    #[test]
    fn kv_cache_aggregates_layers() {
        let mut cache = KvCache::new(3, 2, 3);
        for l in 0..3 {
            let k = vec![vec![0.0; 3], vec![0.0; 3]];
            let v = k.clone();
            cache.layer_mut(l).append(0, &k, &v).unwrap();
        }
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.total_slots(), 3);
        assert!(cache.byte_size() > 0);
        cache.clear();
        assert_eq!(cache.total_slots(), 0);
    }

    #[test]
    fn validate_selection_contract() {
        assert!(validate_selection(&[0, 1, 2], 3).is_ok());
        assert!(validate_selection(&[], 0).is_ok());
        assert!(validate_selection(&[3], 3).is_err());
        assert!(validate_selection(&[1, 0], 3).is_err());
        assert!(validate_selection(&[0, 0], 3).is_err());
    }
}

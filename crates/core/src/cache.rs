//! The KV cache: per-layer storage of key/value vectors for every retained token slot,
//! physically organised as fixed-size blocks drawn from a [`SharedBlockPool`].
//!
//! The cache stores *unrotated* keys together with each token's original sequence
//! position. Positional encodings (RoPE / ALiBi) are applied by the attention module
//! at read time, which is what lets the reproduction switch between the paper's
//! "original position" and "new position" ablations (Table 3) without recomputing
//! keys.
//!
//! ## Paged storage
//!
//! Logically the cache is still a flat, insertion-ordered list of slots — the API
//! ([`LayerKvCache::append`], [`LayerKvCache::retain_slots`], the
//! [`LayerKvCache::keys`] / [`LayerKvCache::values`] views) is unchanged, so the
//! eviction-policy zoo never sees the difference. Physically, each layer owns a
//! *block table*: a list of fixed-size blocks allocated from a (possibly shared,
//! possibly bounded) [`SharedBlockPool`]. Logical slot `i` lives in block
//! `i / block_size` at row `i % block_size`; blocks are kept dense, so only the
//! last block is ever partially filled. Compaction rewrites rows in place and
//! releases emptied tail blocks back to the pool immediately — which is what makes
//! the bytes a policy evicts instantly reusable by *other* sequences sharing the
//! pool.
//!
//! ## Copy-on-write sharing
//!
//! A block's payload lives behind an [`Arc`], so one physical block can be
//! mapped into several sequences' block tables (and into the
//! [`crate::prefix::PrefixRegistry`]) at once — the pool refcount and the `Arc`
//! count track the same sharing. Reads never care. Any *write* — an
//! [`LayerKvCache::append`] into a partially-filled shared block, or an
//! eviction-driven compaction touching shared rows — first forks a private copy
//! ([`LayerKvCache::cow_forks`] counts these): a fresh block is allocated from
//! the pool, the payload is cloned, and the shared original is released. Every
//! other reader (a forked session, a registered prefix) keeps seeing the
//! original bytes, which is what lets the whole eviction-policy zoo run
//! unchanged on shared storage.
//!
//! ## Quantized storage
//!
//! Each layer carries a [`KvDtype`]: at the default [`KvDtype::F32`] block
//! payloads are plain `f32` matrices and every read is a borrow; at
//! [`KvDtype::U8`] a block's rows are stored as `u8` codes under a per-block,
//! per-tensor affine map `f = (q - zero_point) * scale`. Quantization happens
//! when a block *seals* — fills its last row — so the partially-filled tail
//! block stays `f32` and appends never requantize earlier rows. Reads
//! dequantize on the fly: [`KvSlice::row`] hands out a [`Cow`] (borrowed for
//! `f32`, a dequantized copy of one row for `u8`) and [`KvSlice::vecmat`]
//! fuses dequantization into the accumulation so attention never materializes
//! an `f32` copy of a block. Compaction unseals the blocks it rewrites,
//! moves rows in `f32`, and reseals the full ones with fresh parameters;
//! untouched shared blocks keep their sealed payload byte-identical, which is
//! what keeps copy-on-write sharing and the prefix registry dtype-oblivious.

use crate::block::{BlockId, SharedBlockPool, DEFAULT_BLOCK_SIZE};
use crate::CoreError;
use keyformer_tensor::{Matrix, TensorError};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of globally-unique block payload generations. A fresh value is drawn
/// whenever a block's *existing* rows change meaning — creation, copy-on-write
/// fork, compaction rewrite, quantize-on-seal — and never on a plain append
/// (which only adds rows). `(BlockId, generation)` therefore mismatches exactly
/// when derived per-row state (e.g. the rotated-key cache) must be rebuilt,
/// even across pool block-id reuse: a freed id handed to a new block always
/// carries a generation no previous holder ever saw.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Storage precision of a layer's KV block payloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvDtype {
    /// Full-precision `f32` rows — the default, bit-identical to the
    /// pre-quantization backend.
    #[default]
    F32,
    /// `u8` codes under a per-block, per-tensor affine map. Four bytes of KV
    /// become one; sealed blocks carry `(scale, zero_point)` pairs for keys
    /// and values.
    U8,
}

impl KvDtype {
    /// Bytes one stored key/value element occupies.
    pub fn bytes_per_value(self) -> usize {
        match self {
            KvDtype::F32 => 4,
            KvDtype::U8 => 1,
        }
    }

    /// Short stable label (`"f32"` / `"u8"`) for tables and JSON artefacts.
    pub fn label(self) -> &'static str {
        match self {
            KvDtype::F32 => "f32",
            KvDtype::U8 => "u8",
        }
    }
}

/// Affine quantization parameters of one tensor (keys or values) of one
/// sealed block: `f ≈ (q - zero_point) * scale` with `q` in `0..=255`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Affine {
    scale: f32,
    zero_point: f32,
}

impl Affine {
    /// Parameters covering `[min, max]` exactly: `min` maps to code 0 and
    /// `max` to code 255. A degenerate range gets `scale = 1`, which encodes
    /// the constant exactly.
    fn for_range(min: f32, max: f32) -> Affine {
        let scale = if max > min { (max - min) / 255.0 } else { 1.0 };
        Affine {
            scale,
            zero_point: -min / scale,
        }
    }

    /// Parameters covering every element yielded by `data` (empty input gets
    /// the degenerate identity map).
    fn for_values<'a>(data: impl Iterator<Item = &'a f32>) -> Affine {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &x in data {
            min = min.min(x);
            max = max.max(x);
        }
        if min > max {
            return Affine::for_range(0.0, 0.0);
        }
        Affine::for_range(min, max)
    }

    #[inline]
    fn quantize(&self, f: f32) -> u8 {
        (f / self.scale + self.zero_point).round().clamp(0.0, 255.0) as u8
    }

    #[inline]
    fn dequantize(&self, q: u8) -> f32 {
        (f32::from(q) - self.zero_point) * self.scale
    }
}

/// The payload of one fixed-size block: per-head key/value rows for one layer,
/// stored either full-precision or as sealed `u8` codes.
#[derive(Debug, Clone)]
pub(crate) enum KvBlockData {
    /// Full-precision rows. Also the staging representation of a `u8` layer's
    /// partially-filled tail block, which seals once it fills.
    F32 {
        /// Per head: up to `block_size` key rows of width `head_dim`.
        keys: Vec<Matrix>,
        /// Per head: up to `block_size` value rows of width `head_dim`.
        values: Vec<Matrix>,
    },
    /// A sealed block: `u8` codes with one affine map for all key rows and one
    /// for all value rows (per-block, per-tensor quantization).
    U8 {
        /// Per head: `rows * head_dim` key codes, row-major.
        keys: Vec<Vec<u8>>,
        /// Per head: `rows * head_dim` value codes, row-major.
        values: Vec<Vec<u8>>,
        rows: usize,
        head_dim: usize,
        key_map: Affine,
        value_map: Affine,
    },
}

impl KvBlockData {
    fn new(num_heads: usize, head_dim: usize, block_size: usize) -> Self {
        // Matrices are created at their final column width with capacity for a
        // full block of rows up front, so the per-token `push_row` appends that
        // fill the block never touch the allocator.
        let mats = || -> Vec<Matrix> {
            (0..num_heads)
                .map(|_| {
                    let mut m = Matrix::zeros(0, head_dim);
                    m.reserve_rows(block_size);
                    m
                })
                .collect()
        };
        KvBlockData::F32 {
            keys: mats(),
            values: mats(),
        }
    }

    fn byte_size(&self) -> usize {
        match self {
            KvBlockData::F32 { keys, values } => keys
                .iter()
                .chain(values.iter())
                .map(Matrix::byte_size)
                .sum(),
            KvBlockData::U8 { keys, values, .. } => {
                keys.iter().chain(values.iter()).map(Vec::len).sum()
            }
        }
    }

    /// Rows currently held (identical across heads and keys/values).
    fn rows(&self) -> usize {
        match self {
            KvBlockData::F32 { keys, .. } => keys.first().map_or(0, Matrix::rows),
            KvBlockData::U8 { rows, .. } => *rows,
        }
    }

    fn num_heads(&self) -> usize {
        match self {
            KvBlockData::F32 { keys, .. } => keys.len(),
            KvBlockData::U8 { keys, .. } => keys.len(),
        }
    }

    fn head_dim(&self) -> usize {
        match self {
            KvBlockData::F32 { keys, .. } => keys.first().map_or(0, |m| m.shape().1),
            KvBlockData::U8 { head_dim, .. } => *head_dim,
        }
    }

    /// The precision this payload is currently stored at. A `u8` layer's
    /// unsealed tail block reports [`KvDtype::F32`] — that is its physical
    /// representation until it seals.
    fn storage_dtype(&self) -> KvDtype {
        match self {
            KvBlockData::F32 { .. } => KvDtype::F32,
            KvBlockData::U8 { .. } => KvDtype::U8,
        }
    }

    /// One row of one head's keys or values, dequantized if sealed.
    fn row(&self, component: KvComponent, head: usize, row: usize) -> Cow<'_, [f32]> {
        match self {
            KvBlockData::F32 { keys, values } => {
                let m = match component {
                    KvComponent::Keys => &keys[head],
                    KvComponent::Values => &values[head],
                };
                Cow::Borrowed(m.row(row))
            }
            KvBlockData::U8 {
                keys,
                values,
                head_dim,
                key_map,
                value_map,
                ..
            } => {
                let (codes, map) = match component {
                    KvComponent::Keys => (&keys[head], key_map),
                    KvComponent::Values => (&values[head], value_map),
                };
                let row = &codes[row * head_dim..(row + 1) * head_dim];
                Cow::Owned(row.iter().map(|&q| map.dequantize(q)).collect())
            }
        }
    }

    /// Quantizes a full-precision payload in place (no-op when already
    /// sealed). Per-tensor: one affine map covers every key row of every
    /// head, another every value row.
    fn seal(&mut self) {
        let KvBlockData::F32 { keys, values } = self else {
            return;
        };
        let rows = keys.first().map_or(0, Matrix::rows);
        let head_dim = keys.first().map_or(0, |m| m.shape().1);
        let key_map = Affine::for_values(keys.iter().flat_map(|m| m.as_slice().iter()));
        let value_map = Affine::for_values(values.iter().flat_map(|m| m.as_slice().iter()));
        let quantize = |ms: &[Matrix], map: &Affine| -> Vec<Vec<u8>> {
            ms.iter()
                .map(|m| m.as_slice().iter().map(|&f| map.quantize(f)).collect())
                .collect()
        };
        *self = KvBlockData::U8 {
            keys: quantize(keys, &key_map),
            values: quantize(values, &value_map),
            rows,
            head_dim,
            key_map,
            value_map,
        };
    }

    /// Dequantizes a sealed payload back to full-precision staging (no-op
    /// when already `f32`) so compaction can rewrite rows.
    fn unseal(&mut self) {
        let KvBlockData::U8 {
            keys,
            values,
            rows,
            head_dim,
            key_map,
            value_map,
        } = self
        else {
            return;
        };
        let dequantize = |codes: &[Vec<u8>], map: &Affine| -> Vec<Matrix> {
            codes
                .iter()
                .map(|head| {
                    let mut m = Matrix::zeros(0, 0);
                    for r in 0..*rows {
                        let row: Vec<f32> = head[r * *head_dim..(r + 1) * *head_dim]
                            .iter()
                            .map(|&q| map.dequantize(q))
                            .collect();
                        m.push_row(&row);
                    }
                    m
                })
                .collect()
        };
        *self = KvBlockData::F32 {
            keys: dequantize(keys, key_map),
            values: dequantize(values, value_map),
        };
    }
}

/// A refcounted handle to one physical block: the pool id plus the shared
/// payload. Cloning the handle does *not* touch the pool — callers that map the
/// block into another table must pair the clone with a
/// [`SharedBlockPool::retain`].
#[derive(Debug, Clone)]
pub(crate) struct SharedKvBlock {
    pub(crate) id: BlockId,
    pub(crate) generation: u64,
    pub(crate) data: Arc<KvBlockData>,
}

impl SharedKvBlock {
    pub(crate) fn num_heads(&self) -> usize {
        self.data.num_heads()
    }

    pub(crate) fn rows(&self) -> usize {
        self.data.rows()
    }

    pub(crate) fn head_dim(&self) -> usize {
        self.data.head_dim()
    }

    /// Physical storage precision of the pinned payload.
    pub(crate) fn storage_dtype(&self) -> KvDtype {
        self.data.storage_dtype()
    }
}

/// One entry of a layer's block table.
#[derive(Debug)]
struct KvBlock {
    id: BlockId,
    /// Payload generation: globally unique, refreshed whenever existing rows
    /// change meaning (see [`NEXT_GENERATION`]). Preserved by clones that keep
    /// the payload byte-identical (session fork, prefix attach).
    generation: u64,
    data: Arc<KvBlockData>,
}

impl KvBlock {
    fn new(id: BlockId, num_heads: usize, head_dim: usize, block_size: usize) -> Self {
        KvBlock {
            id,
            generation: next_generation(),
            data: Arc::new(KvBlockData::new(num_heads, head_dim, block_size)),
        }
    }

    fn byte_size(&self) -> usize {
        self.data.byte_size()
    }
}

/// Identity and fill level of one block of a layer's table, as seen by
/// derived-state caches: the rotated-key cache keys its per-block entries on
/// `(id, generation)` and tops up rows when only `rows` grew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvBlockMeta {
    /// Pool id of the block.
    pub id: BlockId,
    /// Globally-unique payload generation; changes whenever the block's
    /// existing rows change meaning (CoW fork, compaction rewrite,
    /// quantize-on-seal) and never on a plain append.
    pub generation: u64,
    /// Rows currently held by the block.
    pub rows: usize,
}

/// Which of the two stored tensors a [`KvSlice`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KvComponent {
    Keys,
    Values,
}

/// A read-only, slot-indexed view of one head's keys or values across a layer's
/// block table.
///
/// This is the drop-in replacement for the `&Matrix` the contiguous backend used
/// to hand out: row `i` is logical slot `i`, whatever block it physically lives
/// in. Only the small read surface attention needs is exposed.
#[derive(Debug, Clone, Copy)]
pub struct KvSlice<'a> {
    blocks: &'a [KvBlock],
    head: usize,
    component: KvComponent,
    block_size: usize,
    len: usize,
    head_dim: usize,
}

impl<'a> KvSlice<'a> {
    /// Number of live slots (rows) in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the view holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shape as `(live_slots, head_dim)`, mirroring [`Matrix::shape`].
    pub fn shape(&self) -> (usize, usize) {
        (self.len, self.head_dim)
    }

    /// A copy of this view restricted to its first `len` slots.
    ///
    /// Chunk-batched prefill uses this to give query `i` of a chunk a causal
    /// view over exactly the slots the sequential path would have seen —
    /// `prior + i + 1` of them — even though the whole chunk's rows are
    /// already appended. Every read primitive ([`KvSlice::row`],
    /// [`KvSlice::vecmat_into`], [`KvSlice::for_each_row`]) is bounded by
    /// `len`, so the later rows are invisible through the truncated view.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn truncated(self, len: usize) -> Self {
        assert!(
            len <= self.len,
            "cannot extend a {}-slot view to {len} slots",
            self.len
        );
        KvSlice { len, ..self }
    }

    /// Row of logical slot `slot`: a borrow for `f32` blocks, a dequantized
    /// copy of the single row for sealed `u8` blocks (never a whole block).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    #[inline]
    pub fn row(&self, slot: usize) -> Cow<'a, [f32]> {
        assert!(slot < self.len, "slot index out of bounds");
        self.blocks[slot / self.block_size].data.row(
            self.component,
            self.head,
            slot % self.block_size,
        )
    }

    /// Vector-matrix product `v * self` (treats `v` as a row vector of per-slot
    /// coefficients), mirroring [`Matrix::vecmat`] across block boundaries. This
    /// is attention's value-aggregation primitive.
    ///
    /// For sealed `u8` blocks the dequantization is fused into the accumulation:
    /// per block the codes are accumulated raw (`acc += coeff * q`, alongside a
    /// running coefficient sum) and the affine map is applied once at the end,
    /// so no `f32` copy of a block is ever materialized. The `f32` arm is the
    /// exact pre-quantization loop, preserving bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != len()`.
    pub fn vecmat(&self, v: &[f32]) -> Result<Vec<f32>, TensorError> {
        if v.len() != self.len {
            return Err(TensorError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0f32; self.head_dim];
        for (block_idx, coeffs) in v.chunks(self.block_size).enumerate() {
            match &*self.blocks[block_idx].data {
                KvBlockData::F32 { keys, values } => {
                    let m = match self.component {
                        KvComponent::Keys => &keys[self.head],
                        KvComponent::Values => &values[self.head],
                    };
                    for (r, &coeff) in coeffs.iter().enumerate() {
                        if coeff == 0.0 {
                            continue;
                        }
                        for (o, &x) in out.iter_mut().zip(m.row(r)) {
                            *o += coeff * x;
                        }
                    }
                }
                KvBlockData::U8 {
                    keys,
                    values,
                    head_dim,
                    key_map,
                    value_map,
                    ..
                } => {
                    let (codes, map) = match self.component {
                        KvComponent::Keys => (&keys[self.head], key_map),
                        KvComponent::Values => (&values[self.head], value_map),
                    };
                    // sum(coeff * (q - zero) * scale) over rows factors into
                    // scale * (sum(coeff * q) - zero * sum(coeff)).
                    let mut acc = vec![0.0f32; *head_dim];
                    let mut coeff_sum = 0.0f32;
                    for (r, &coeff) in coeffs.iter().enumerate() {
                        if coeff == 0.0 {
                            continue;
                        }
                        coeff_sum += coeff;
                        let row = &codes[r * *head_dim..(r + 1) * *head_dim];
                        for (a, &q) in acc.iter_mut().zip(row) {
                            *a += coeff * f32::from(q);
                        }
                    }
                    let offset = map.zero_point * coeff_sum;
                    for (o, a) in out.iter_mut().zip(acc) {
                        *o += map.scale * (a - offset);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Copies the row of logical slot `slot` into `out`, dequantizing sealed
    /// `u8` rows element-wise — the same arithmetic as [`KvSlice::row`]
    /// without the per-row allocation its `Cow::Owned` arm pays.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()` or `out.len()` differs from the head width.
    pub fn copy_row_into(&self, slot: usize, out: &mut [f32]) {
        assert!(slot < self.len, "slot index out of bounds");
        assert_eq!(out.len(), self.head_dim, "output width must match head_dim");
        let row = slot % self.block_size;
        match &*self.blocks[slot / self.block_size].data {
            KvBlockData::F32 { keys, values } => {
                let m = match self.component {
                    KvComponent::Keys => &keys[self.head],
                    KvComponent::Values => &values[self.head],
                };
                out.copy_from_slice(m.row(row));
            }
            KvBlockData::U8 {
                keys,
                values,
                head_dim,
                key_map,
                value_map,
                ..
            } => {
                let (codes, map) = match self.component {
                    KvComponent::Keys => (&keys[self.head], key_map),
                    KvComponent::Values => (&values[self.head], value_map),
                };
                let src = &codes[row * head_dim..(row + 1) * head_dim];
                for (o, &q) in out.iter_mut().zip(src) {
                    *o = map.dequantize(q);
                }
            }
        }
    }

    /// Visits every live row in slot order without allocating: `f32` rows are
    /// passed as direct borrows into the block, sealed `u8` rows are
    /// dequantized into `scratch` first (the same element-wise arithmetic as
    /// [`KvSlice::row`]). This is the visitor attention's score loop uses
    /// instead of per-row `Cow::to_vec`.
    ///
    /// # Panics
    ///
    /// Panics if `scratch.len()` differs from the head width.
    pub fn for_each_row(&self, scratch: &mut [f32], mut f: impl FnMut(usize, &[f32])) {
        assert_eq!(
            scratch.len(),
            self.head_dim,
            "scratch width must match head_dim"
        );
        let mut slot = 0;
        for block in self.blocks.iter() {
            if slot == self.len {
                break;
            }
            let rows_here = (self.len - slot).min(self.block_size);
            match &*block.data {
                KvBlockData::F32 { keys, values } => {
                    let m = match self.component {
                        KvComponent::Keys => &keys[self.head],
                        KvComponent::Values => &values[self.head],
                    };
                    for r in 0..rows_here {
                        f(slot + r, m.row(r));
                    }
                }
                KvBlockData::U8 {
                    keys,
                    values,
                    head_dim,
                    key_map,
                    value_map,
                    ..
                } => {
                    let (codes, map) = match self.component {
                        KvComponent::Keys => (&keys[self.head], key_map),
                        KvComponent::Values => (&values[self.head], value_map),
                    };
                    for r in 0..rows_here {
                        let src = &codes[r * head_dim..(r + 1) * head_dim];
                        for (o, &q) in scratch.iter_mut().zip(src) {
                            *o = map.dequantize(q);
                        }
                        f(slot + r, scratch);
                    }
                }
            }
            slot += rows_here;
        }
    }

    /// [`KvSlice::vecmat`] into caller-owned buffers: the product lands in
    /// `out` and `scratch` holds the fused-dequantization accumulator, so
    /// steady-state attention pays no allocation. Bit-identical to
    /// [`KvSlice::vecmat`] — same per-block accumulation order in both arms.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != len()`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` or `scratch.len()` differs from the head width.
    pub fn vecmat_into(
        &self,
        v: &[f32],
        out: &mut [f32],
        scratch: &mut [f32],
    ) -> Result<(), TensorError> {
        if v.len() != self.len {
            return Err(TensorError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        assert_eq!(out.len(), self.head_dim, "output width must match head_dim");
        assert_eq!(
            scratch.len(),
            self.head_dim,
            "scratch width must match head_dim"
        );
        out.fill(0.0);
        for (block_idx, coeffs) in v.chunks(self.block_size).enumerate() {
            match &*self.blocks[block_idx].data {
                KvBlockData::F32 { keys, values } => {
                    let m = match self.component {
                        KvComponent::Keys => &keys[self.head],
                        KvComponent::Values => &values[self.head],
                    };
                    for (r, &coeff) in coeffs.iter().enumerate() {
                        if coeff == 0.0 {
                            continue;
                        }
                        for (o, &x) in out.iter_mut().zip(m.row(r)) {
                            *o += coeff * x;
                        }
                    }
                }
                KvBlockData::U8 {
                    keys,
                    values,
                    head_dim,
                    key_map,
                    value_map,
                    ..
                } => {
                    let (codes, map) = match self.component {
                        KvComponent::Keys => (&keys[self.head], key_map),
                        KvComponent::Values => (&values[self.head], value_map),
                    };
                    // Same factoring as `vecmat`:
                    // sum(coeff * (q - zero) * scale) over rows is
                    // scale * (sum(coeff * q) - zero * sum(coeff)).
                    scratch.fill(0.0);
                    let mut coeff_sum = 0.0f32;
                    for (r, &coeff) in coeffs.iter().enumerate() {
                        if coeff == 0.0 {
                            continue;
                        }
                        coeff_sum += coeff;
                        let row = &codes[r * *head_dim..(r + 1) * *head_dim];
                        for (a, &q) in scratch.iter_mut().zip(row) {
                            *a += coeff * f32::from(q);
                        }
                    }
                    let offset = map.zero_point * coeff_sum;
                    for (o, &a) in out.iter_mut().zip(scratch.iter()) {
                        *o += map.scale * (a - offset);
                    }
                }
            }
        }
        Ok(())
    }

    /// Copies the view into a dense matrix (diagnostics / tests).
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(0, 0);
        for slot in 0..self.len {
            m.push_row(&self.row(slot));
        }
        m
    }
}

/// Key/value storage for a single decoder layer, backed by pool blocks.
///
/// Slots are kept in insertion order; `positions[i]` records the original sequence
/// position of slot `i`. Per head, [`LayerKvCache::keys`] and
/// [`LayerKvCache::values`] are `(n_slots, head_dim)` views whose rows parallel
/// the slot order.
#[derive(Debug)]
pub struct LayerKvCache {
    num_heads: usize,
    head_dim: usize,
    pool: SharedBlockPool,
    /// Cached copy of the pool's immutable block size, so the attention hot
    /// path (`keys`/`values`/`append`) never touches the pool's lock just to
    /// read a constant.
    block_size: usize,
    /// Storage precision of sealed blocks (the partially-filled tail always
    /// stages in `f32` and seals when it fills).
    dtype: KvDtype,
    blocks: Vec<KvBlock>,
    positions: Vec<usize>,
    /// Copy-on-write forks performed by this layer (writes into shared blocks).
    cow_forks: usize,
}

impl LayerKvCache {
    /// Creates an empty per-layer cache for `num_heads` heads of width `head_dim`,
    /// backed by a private unbounded pool with the default block size.
    pub fn new(num_heads: usize, head_dim: usize) -> Self {
        Self::with_pool(
            num_heads,
            head_dim,
            SharedBlockPool::unbounded(DEFAULT_BLOCK_SIZE),
        )
    }

    /// Creates an empty per-layer cache drawing its blocks from `pool`, storing
    /// at the default full precision.
    pub fn with_pool(num_heads: usize, head_dim: usize, pool: SharedBlockPool) -> Self {
        Self::with_pool_dtype(num_heads, head_dim, pool, KvDtype::F32)
    }

    /// Creates an empty per-layer cache drawing its blocks from `pool`, storing
    /// sealed blocks at `dtype`.
    pub fn with_pool_dtype(
        num_heads: usize,
        head_dim: usize,
        pool: SharedBlockPool,
        dtype: KvDtype,
    ) -> Self {
        LayerKvCache {
            num_heads,
            head_dim,
            block_size: pool.block_size(),
            dtype,
            pool,
            blocks: Vec::new(),
            positions: Vec::new(),
            cow_forks: 0,
        }
    }

    /// Storage precision sealed blocks of this layer use.
    pub fn dtype(&self) -> KvDtype {
        self.dtype
    }

    /// Number of live token slots.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when no slots are stored.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of attention heads this cache serves.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head key/value vector width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Token slots per block of the backing pool.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The pool this layer draws its blocks from.
    pub fn pool(&self) -> &SharedBlockPool {
        &self.pool
    }

    /// Number of blocks currently held by this layer.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The layer's block table: pool block ids in slot order.
    pub fn block_table(&self) -> Vec<BlockId> {
        self.blocks.iter().map(|b| b.id).collect()
    }

    /// Identity and fill level of block `idx` of this layer's table. Derived
    /// per-row caches (rotated keys) compare `(id, generation)` to decide
    /// whether their copy of the block is still valid and `rows` to top up
    /// freshly appended rows.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_blocks()`.
    pub fn block_meta(&self, idx: usize) -> KvBlockMeta {
        let b = &self.blocks[idx];
        KvBlockMeta {
            id: b.id,
            generation: b.generation,
            rows: b.data.rows(),
        }
    }

    /// Token slots covered by the allocated blocks (`num_blocks * block_size`).
    /// `allocated_slots() - len()` is this layer's internal fragmentation.
    pub fn allocated_slots(&self) -> usize {
        self.blocks.len() * self.block_size()
    }

    /// `true` when the next [`LayerKvCache::append`] must allocate a new block.
    pub fn needs_block_for_append(&self) -> bool {
        self.len() == self.allocated_slots()
    }

    /// Copy-on-write forks this layer has performed (writes that hit a block
    /// mapped by another sequence or the prefix registry).
    pub fn cow_forks(&self) -> usize {
        self.cow_forks
    }

    /// Number of this layer's blocks currently shared with another holder.
    pub fn shared_block_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| Arc::strong_count(&b.data) > 1)
            .count()
    }

    /// The layer's block table as `(id, live_rows)` pairs, in slot order. Lets
    /// a scheduler aggregate *physical* occupancy across sequences that share
    /// blocks (each block counted once however many tables map it).
    pub fn block_rows(&self) -> impl Iterator<Item = (BlockId, usize)> + '_ {
        self.blocks.iter().map(|b| (b.id, b.data.rows()))
    }

    /// A cloneable handle to block `idx` of this layer's table (the prefix
    /// registry uses this to pin prompt blocks). The caller must pair any
    /// retained clone with a pool retain.
    pub(crate) fn shared_block(&self, idx: usize) -> SharedKvBlock {
        let b = &self.blocks[idx];
        SharedKvBlock {
            id: b.id,
            generation: b.generation,
            data: Arc::clone(&b.data),
        }
    }

    /// Maps an already-allocated, *full* block into this layer's table,
    /// retaining it in the pool. Only valid while the table is dense (the
    /// current last block is full) — i.e. during prefix attachment, before any
    /// private appends. Slot positions continue the layer's own sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the block's shape does not match
    /// this layer or the table is not dense, and [`CoreError::InvalidBlock`] if
    /// the pool does not recognise the block.
    pub(crate) fn push_shared_block(&mut self, block: SharedKvBlock) -> Result<(), CoreError> {
        if block.num_heads() != self.num_heads || block.head_dim() != self.head_dim {
            return Err(CoreError::InvalidConfig(format!(
                "shared block shape ({} heads, dim {}) does not match layer ({} heads, dim {})",
                block.num_heads(),
                block.head_dim(),
                self.num_heads,
                self.head_dim
            )));
        }
        if block.rows() != self.block_size {
            return Err(CoreError::InvalidConfig(format!(
                "only full blocks can be shared: block holds {} of {} rows",
                block.rows(),
                self.block_size
            )));
        }
        if self.len() != self.allocated_slots() {
            return Err(CoreError::InvalidConfig(
                "cannot map a shared block behind a partially-filled block".into(),
            ));
        }
        if block.storage_dtype() != self.dtype {
            return Err(CoreError::InvalidConfig(format!(
                "shared block stored as {} cannot be mapped into a {} layer",
                block.storage_dtype().label(),
                self.dtype.label()
            )));
        }
        self.pool.retain(block.id)?;
        let start = self.positions.len();
        self.positions.extend(start..start + self.block_size);
        // The payload is byte-identical to the donor's, so the generation is
        // preserved: cached rotations derived from the donor stay valid.
        self.blocks.push(KvBlock {
            id: block.id,
            generation: block.generation,
            data: block.data,
        });
        Ok(())
    }

    /// Ensures block `idx` is privately owned, forking a copy-on-write clone
    /// (fresh pool block + payload copy, shared original released) when it is
    /// currently mapped elsewhere.
    ///
    /// The fork decision is one atomic [`SharedBlockPool::fork_block`] probe, so
    /// two sequences racing to write the same shared block from different
    /// threads each reach a consistent outcome: exactly one side observes the
    /// block private (after the other's fork released its mapping), and a block
    /// shared by both sides is forked by each exactly once.
    fn ensure_private(&mut self, idx: usize) -> Result<(), CoreError> {
        match self.pool.fork_block(self.blocks[idx].id)? {
            None => Ok(()),
            Some(new_id) => {
                let data = KvBlockData::clone(&self.blocks[idx].data);
                // A fork exists to be written: give it a fresh generation so
                // derived caches never mistake it for the original payload.
                self.blocks[idx] = KvBlock {
                    id: new_id,
                    generation: next_generation(),
                    data: Arc::new(data),
                };
                self.cow_forks += 1;
                Ok(())
            }
        }
    }

    /// Mutable payload access to a block whose *pool* mapping is already
    /// private (refcount 1). A concurrent forker that decided to fork away
    /// from this block may still hold a transient `Arc` clone while it copies
    /// the payload; ownership is already decided by the pool, so wait out the
    /// copy rather than treating the block as shared.
    fn private_data_mut(block: &mut KvBlock) -> &mut KvBlockData {
        while Arc::get_mut(&mut block.data).is_none() {
            std::hint::spin_loop();
        }
        Arc::get_mut(&mut block.data).expect("sole owner after forker's copy completed")
    }

    /// Mutable access to block `idx`'s payload, forking it private first.
    fn block_data_mut(&mut self, idx: usize) -> Result<&mut KvBlockData, CoreError> {
        self.ensure_private(idx)?;
        Ok(Self::private_data_mut(&mut self.blocks[idx]))
    }

    /// Clones this layer's table into a new cache sharing every block
    /// copy-on-write (session forking).
    pub(crate) fn fork(&self) -> Result<LayerKvCache, CoreError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            self.pool.retain(b.id)?;
            blocks.push(KvBlock {
                id: b.id,
                generation: b.generation,
                data: Arc::clone(&b.data),
            });
        }
        Ok(LayerKvCache {
            num_heads: self.num_heads,
            head_dim: self.head_dim,
            pool: self.pool.clone(),
            block_size: self.block_size,
            dtype: self.dtype,
            blocks,
            positions: self.positions.clone(),
            cow_forks: 0,
        })
    }

    /// Original sequence positions of the live slots, in slot order.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Key view of `head` with one row per live slot.
    ///
    /// # Panics
    ///
    /// Panics if `head >= num_heads`.
    pub fn keys(&self, head: usize) -> KvSlice<'_> {
        assert!(head < self.num_heads, "head index out of bounds");
        KvSlice {
            blocks: &self.blocks,
            head,
            component: KvComponent::Keys,
            block_size: self.block_size(),
            len: self.len(),
            head_dim: self.head_dim,
        }
    }

    /// Value view of `head` with one row per live slot.
    ///
    /// # Panics
    ///
    /// Panics if `head >= num_heads`.
    pub fn values(&self, head: usize) -> KvSlice<'_> {
        assert!(head < self.num_heads, "head index out of bounds");
        KvSlice {
            blocks: &self.blocks,
            head,
            component: KvComponent::Values,
            block_size: self.block_size(),
            len: self.len(),
            head_dim: self.head_dim,
        }
    }

    /// Appends one token's per-head key and value vectors, allocating a fresh
    /// block from the pool when the last one is full.
    ///
    /// `keys_per_head[h]` and `values_per_head[h]` must each have length `head_dim`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the number of heads or any vector
    /// length is wrong, and [`CoreError::PoolExhausted`] if a strict pool has no
    /// block left.
    pub fn append(
        &mut self,
        position: usize,
        keys_per_head: &[Vec<f32>],
        values_per_head: &[Vec<f32>],
    ) -> Result<(), CoreError> {
        if keys_per_head.len() != self.num_heads || values_per_head.len() != self.num_heads {
            return Err(CoreError::InvalidConfig(format!(
                "expected {} heads, got {} keys / {} values",
                self.num_heads,
                keys_per_head.len(),
                values_per_head.len()
            )));
        }
        for (k, v) in keys_per_head.iter().zip(values_per_head) {
            if k.len() != self.head_dim || v.len() != self.head_dim {
                return Err(CoreError::InvalidConfig(format!(
                    "expected head_dim {}, got key {} / value {}",
                    self.head_dim,
                    k.len(),
                    v.len()
                )));
            }
        }
        self.append_with(position, |keys, values| {
            for h in 0..keys_per_head.len() {
                keys[h].push_row(&keys_per_head[h]);
                values[h].push_row(&values_per_head[h]);
            }
        })
    }

    /// Appends one token's keys and values from flat slices laid out
    /// `[head 0 | head 1 | ...]`, each `num_heads * head_dim` long.
    ///
    /// Identical to [`LayerKvCache::append`] — the same rows land in the same
    /// order — without requiring the caller to materialize per-head `Vec`s;
    /// this is the allocation-free form the forward workspace uses.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if either slice length is wrong,
    /// and [`CoreError::PoolExhausted`] if a strict pool has no block left.
    pub fn append_from_slices(
        &mut self,
        position: usize,
        keys: &[f32],
        values: &[f32],
    ) -> Result<(), CoreError> {
        let want = self.num_heads * self.head_dim;
        if keys.len() != want || values.len() != want {
            return Err(CoreError::InvalidConfig(format!(
                "expected {} heads x head_dim {} = {want} values, got {} keys / {} values",
                self.num_heads,
                self.head_dim,
                keys.len(),
                values.len()
            )));
        }
        let head_dim = self.head_dim;
        self.append_with(position, |bk, bv| {
            for h in 0..bk.len() {
                bk[h].push_row(&keys[h * head_dim..(h + 1) * head_dim]);
                bv[h].push_row(&values[h * head_dim..(h + 1) * head_dim]);
            }
        })
    }

    /// Appends `rows` consecutive tokens' keys and values in one call, from
    /// flat slices laid out `[token 0: head 0 | head 1 | ... | token 1: ...]`
    /// (each token contributing `num_heads * head_dim` values), with the first
    /// row taking `start_position` and subsequent rows consecutive positions.
    ///
    /// Bit-identical to calling [`LayerKvCache::append_from_slices`] once per
    /// row: the same rows land in the same slots of the same blocks, blocks
    /// seal (quantize) at exactly the same fills, and copy-on-write forks
    /// trigger at the same appends. The batch form validates once and lets
    /// chunk-batched prefill push a whole chunk's KV per layer pass.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if either slice length differs
    /// from `rows * num_heads * head_dim`, and [`CoreError::PoolExhausted`]
    /// if a strict pool runs out of blocks part-way (rows appended before the
    /// failure remain appended, exactly as a per-row loop would leave them).
    pub fn append_batch_from_slices(
        &mut self,
        start_position: usize,
        rows: usize,
        keys: &[f32],
        values: &[f32],
    ) -> Result<(), CoreError> {
        let stride = self.num_heads * self.head_dim;
        let want = rows * stride;
        if keys.len() != want || values.len() != want {
            return Err(CoreError::InvalidConfig(format!(
                "expected {rows} rows x {} heads x head_dim {} = {want} values, \
                 got {} keys / {} values",
                self.num_heads,
                self.head_dim,
                keys.len(),
                values.len()
            )));
        }
        let head_dim = self.head_dim;
        for r in 0..rows {
            let krow = &keys[r * stride..(r + 1) * stride];
            let vrow = &values[r * stride..(r + 1) * stride];
            self.append_with(start_position + r, |bk, bv| {
                for h in 0..bk.len() {
                    bk[h].push_row(&krow[h * head_dim..(h + 1) * head_dim]);
                    bv[h].push_row(&vrow[h * head_dim..(h + 1) * head_dim]);
                }
            })?;
        }
        Ok(())
    }

    /// Shared tail of the append paths: allocates a tail block when needed,
    /// forks it private, lets `push` add one row per head, then seals on fill.
    fn append_with(
        &mut self,
        position: usize,
        push: impl FnOnce(&mut Vec<Matrix>, &mut Vec<Matrix>),
    ) -> Result<(), CoreError> {
        if self.needs_block_for_append() {
            let id = self.pool.alloc()?;
            self.blocks.push(KvBlock::new(
                id,
                self.num_heads,
                self.head_dim,
                self.block_size,
            ));
            // One reservation per fresh block keeps the per-token position
            // pushes allocation-free until the block fills.
            self.positions.reserve(self.block_size);
        }
        // Appending into a partially-filled block another sequence still maps
        // (a fork sharing our tail) must not mutate the shared rows: fork first.
        let block_size = self.block_size;
        let dtype = self.dtype;
        let block = self.block_data_mut(self.blocks.len() - 1)?;
        {
            let KvBlockData::F32 { keys, values } = &mut *block else {
                // The tail block of any layer stages in f32 until it fills; a
                // sealed tail would mean the seal-on-full invariant was broken.
                unreachable!("append reached a sealed block");
            };
            push(keys, values);
        }
        let sealed = dtype == KvDtype::U8 && block.rows() == block_size;
        if sealed {
            block.seal();
        }
        if sealed {
            // Quantize-on-seal changes the dequantized value of every row
            // already in the block: derived per-row state is stale.
            let last = self.blocks.len() - 1;
            self.blocks[last].generation = next_generation();
        }
        self.positions.push(position);
        Ok(())
    }

    /// Compacts the cache down to the given slot indices, releasing every block
    /// the compaction empties back to the pool.
    ///
    /// `retained` must be sorted, unique and in-bounds; this is the contract policies
    /// must satisfy in [`crate::policy::KvCachePolicy::select_retained`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSelection`] if the contract is violated.
    pub fn retain_slots(&mut self, retained: &[usize]) -> Result<(), CoreError> {
        validate_selection(retained, self.len())?;
        let bs = self.block_size();
        let new_len = retained.len();
        let needed = new_len.div_ceil(bs);
        // Blocks compaction writes form a suffix of the kept table: `retained`
        // is strictly increasing with `dst <= src`, so once one slot moves
        // every later slot moves too. Everything from the first moved slot's
        // destination block onwards (plus the truncated final block) gets a
        // fresh generation below; the untouched identity prefix keeps its
        // generations, so derived caches keep their rotations for it.
        let mut first_touched = needed;
        for (dst, &src) in retained.iter().enumerate() {
            if dst != src {
                first_touched = dst / bs;
                break;
            }
        }
        if needed > 0 && new_len < needed * bs {
            first_touched = first_touched.min(needed - 1);
        }
        // Copy-on-write pre-pass: every block compaction will *write* — a
        // destination of a moved row, or the truncated final block — must be
        // privately owned first, and unsealed back to f32 staging if it was
        // quantized. Blocks the selection leaves byte-identical (an aligned
        // identity prefix) stay shared and sealed.
        for (dst, &src) in retained.iter().enumerate() {
            if dst != src {
                self.ensure_private(dst / bs)?;
                Self::private_data_mut(&mut self.blocks[dst / bs]).unseal();
            }
        }
        if needed > 0 && new_len < needed * bs {
            // The final kept block will be truncated below.
            self.ensure_private(needed - 1)?;
            Self::private_data_mut(&mut self.blocks[needed - 1]).unseal();
        }
        // `retained` is strictly increasing, so every destination slot is at or
        // before its source slot and rows can be moved in a single forward pass.
        // Sources still sealed dequantize row-by-row; destinations were
        // unsealed above, so moves always land in f32 staging.
        for (dst, &src) in retained.iter().enumerate() {
            if dst == src {
                continue;
            }
            let (sb, sr) = (src / bs, src % bs);
            let (db, dr) = (dst / bs, dst % bs);
            for h in 0..self.num_heads {
                let key = self.blocks[sb]
                    .data
                    .row(KvComponent::Keys, h, sr)
                    .into_owned();
                let value = self.blocks[sb]
                    .data
                    .row(KvComponent::Values, h, sr)
                    .into_owned();
                let data = Self::private_data_mut(&mut self.blocks[db]);
                let KvBlockData::F32 { keys, values } = data else {
                    unreachable!("destination blocks are unsealed in the pre-pass");
                };
                keys[h].row_mut(dr).copy_from_slice(&key);
                values[h].row_mut(dr).copy_from_slice(&value);
            }
        }
        self.positions = retained.iter().map(|&i| self.positions[i]).collect();
        // Release every emptied tail block even if one release reports a
        // bookkeeping error — bailing mid-drain would drop the remaining
        // blocks from the table unreleased, turning one bad id into a
        // permanent pool leak.
        let mut release_err = None;
        for block in self.blocks.drain(needed..) {
            if let Err(e) = self.pool.release(block.id) {
                release_err.get_or_insert(e);
            }
        }
        if let Some(e) = release_err {
            return Err(e);
        }
        if new_len > 0 && new_len < needed * bs {
            let rows = new_len - (needed - 1) * bs;
            let last = Self::private_data_mut(&mut self.blocks[needed - 1]);
            let KvBlockData::F32 { keys, values } = last else {
                unreachable!("the truncated final block is unsealed in the pre-pass");
            };
            for m in keys.iter_mut().chain(values.iter_mut()) {
                m.truncate_rows(rows);
            }
        }
        // Reseal pass for quantized layers: any full block left in f32 staging
        // was unsealed (and made private) by this compaction — quantize it
        // again with parameters fit to its post-compaction contents. The
        // partial tail stays in staging until it fills.
        if self.dtype == KvDtype::U8 {
            for block in &mut self.blocks {
                if block.data.rows() == bs && block.data.storage_dtype() == KvDtype::F32 {
                    Self::private_data_mut(block).seal();
                }
            }
        }
        for block in self.blocks[first_touched..].iter_mut() {
            block.generation = next_generation();
        }
        Ok(())
    }

    /// Removes every slot, returning all blocks to the pool. Best-effort on
    /// pool-accounting errors (this also backs [`Drop`], where nothing can be
    /// propagated); a debug build still flags them.
    pub fn clear(&mut self) {
        for block in self.blocks.drain(..) {
            let released = self.pool.release(block.id);
            debug_assert!(released.is_ok(), "clear released an unknown block");
        }
        self.positions.clear();
    }

    /// Approximate memory footprint of the *live* keys and values, in bytes.
    ///
    /// This is the quantity the paper's Figure 1(b) tracks (KV-cache size vs. model
    /// size) and the input to the data-movement model in `keyformer-perf`. For the
    /// block-granular footprint the allocator actually holds, see
    /// [`LayerKvCache::allocated_byte_size`].
    pub fn byte_size(&self) -> usize {
        self.blocks.iter().map(KvBlock::byte_size).sum()
    }

    /// Byte footprint at block granularity: every allocated block counted at its
    /// full `block_size`, including the unfilled tail of the last block.
    pub fn allocated_byte_size(&self) -> usize {
        self.allocated_slots() * self.bytes_per_slot()
    }

    /// Bytes one retained token slot occupies in this layer (keys + values across
    /// every head) at the layer's storage dtype, independent of how many slots
    /// are currently live. This is the unit the serving layer's block arithmetic
    /// multiplies by the block size, so pool sizing, admission reservations and
    /// utilization stats all account in *quantized* bytes for `u8` layers. (The
    /// unsealed tail block transiently stages at `f32`; accounting charges the
    /// sealed representation.)
    pub fn bytes_per_slot(&self) -> usize {
        2 * self.num_heads * self.head_dim * self.dtype.bytes_per_value()
    }
}

impl Drop for LayerKvCache {
    fn drop(&mut self) {
        // Retiring a sequence returns its blocks to the shared pool immediately.
        self.clear();
    }
}

/// The full KV cache of a decoder stack: one [`LayerKvCache`] per layer, all
/// drawing from one [`SharedBlockPool`].
#[derive(Debug)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
    pool: SharedBlockPool,
}

impl KvCache {
    /// Creates an empty cache for `num_layers` layers, each with `num_heads` heads of
    /// width `head_dim`, over a private unbounded pool with the default block size.
    pub fn new(num_layers: usize, num_heads: usize, head_dim: usize) -> Self {
        Self::with_pool(
            num_layers,
            num_heads,
            head_dim,
            SharedBlockPool::unbounded(DEFAULT_BLOCK_SIZE),
        )
    }

    /// Creates an empty cache whose layers all allocate from `pool` — the
    /// constructor the serving layer uses to make many sessions contend for (and
    /// recycle) one physical pool.
    pub fn with_pool(
        num_layers: usize,
        num_heads: usize,
        head_dim: usize,
        pool: SharedBlockPool,
    ) -> Self {
        Self::with_pool_dtype(num_layers, num_heads, head_dim, pool, KvDtype::F32)
    }

    /// Creates an empty cache allocating from `pool` with every layer storing
    /// sealed blocks at `dtype`.
    pub fn with_pool_dtype(
        num_layers: usize,
        num_heads: usize,
        head_dim: usize,
        pool: SharedBlockPool,
        dtype: KvDtype,
    ) -> Self {
        KvCache {
            layers: (0..num_layers)
                .map(|_| LayerKvCache::with_pool_dtype(num_heads, head_dim, pool.clone(), dtype))
                .collect(),
            pool,
        }
    }

    /// Storage precision of this cache's layers.
    pub fn dtype(&self) -> KvDtype {
        self.layers
            .first()
            .map_or(KvDtype::F32, LayerKvCache::dtype)
    }

    /// Number of decoder layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The pool shared by every layer of this cache.
    pub fn pool(&self) -> &SharedBlockPool {
        &self.pool
    }

    /// Token slots per block of the backing pool.
    pub fn block_size(&self) -> usize {
        self.layers
            .first()
            .map_or_else(|| self.pool.block_size(), LayerKvCache::block_size)
    }

    /// Borrow of a layer's cache.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn layer(&self, layer: usize) -> &LayerKvCache {
        &self.layers[layer]
    }

    /// Mutable borrow of a layer's cache.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerKvCache {
        &mut self.layers[layer]
    }

    /// Iterator over layer caches.
    pub fn iter(&self) -> impl Iterator<Item = &LayerKvCache> {
        self.layers.iter()
    }

    /// Total number of live slots summed over layers.
    pub fn total_slots(&self) -> usize {
        self.layers.iter().map(LayerKvCache::len).sum()
    }

    /// Total number of blocks held, summed over layers.
    pub fn total_blocks(&self) -> usize {
        self.layers.iter().map(LayerKvCache::num_blocks).sum()
    }

    /// Total slots covered by held blocks, summed over layers.
    /// `total_allocated_slots() - total_slots()` is the cache's internal
    /// fragmentation in slots.
    pub fn total_allocated_slots(&self) -> usize {
        self.layers.iter().map(LayerKvCache::allocated_slots).sum()
    }

    /// Blocks a single token append may need in the worst case right now: one
    /// per layer whose last block is full. Chunked prefill pre-flights this
    /// against the pool before forwarding a token into a strict pool.
    pub fn blocks_needed_for_next_token(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.needs_block_for_append())
            .count()
    }

    /// Blocks appending the next `n` tokens would need in the worst case,
    /// summed over layers: per layer, the slots the appends overflow past the
    /// already-allocated tail, rounded up to whole blocks. `n = 1` agrees with
    /// [`KvCache::blocks_needed_for_next_token`]. Chunk-batched prefill
    /// pre-flights a whole chunk against the pool with one call instead of a
    /// per-token lock round-trip.
    pub fn blocks_needed_for_next_n_tokens(&self, n: usize) -> usize {
        let bs = self.block_size().max(1);
        self.layers
            .iter()
            .map(|l| {
                (l.len() + n)
                    .saturating_sub(l.allocated_slots())
                    .div_ceil(bs)
            })
            .sum()
    }

    /// Copy-on-write forks performed across all layers.
    pub fn total_cow_forks(&self) -> usize {
        self.layers.iter().map(LayerKvCache::cow_forks).sum()
    }

    /// Blocks of this cache currently shared with another holder (a forked
    /// session or the prefix registry), summed over layers.
    pub fn shared_block_count(&self) -> usize {
        self.layers
            .iter()
            .map(LayerKvCache::shared_block_count)
            .sum()
    }

    /// Clones this cache into a new one that maps every current block
    /// copy-on-write: both caches read the same physical blocks until either
    /// side writes (appends into a partial block, or compacts), at which point
    /// the writer forks a private copy. The clone draws from the same pool.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if the pool's accounting disagrees
    /// with the block table (a bookkeeping bug).
    pub fn fork(&self) -> Result<KvCache, CoreError> {
        let mut layers = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            layers.push(layer.fork()?);
        }
        Ok(KvCache {
            layers,
            pool: self.pool.clone(),
        })
    }

    /// Total live byte footprint summed over layers.
    pub fn byte_size(&self) -> usize {
        self.layers.iter().map(LayerKvCache::byte_size).sum()
    }

    /// Total block-granular byte footprint summed over layers.
    pub fn allocated_byte_size(&self) -> usize {
        self.layers
            .iter()
            .map(LayerKvCache::allocated_byte_size)
            .sum()
    }

    /// Bytes one cached token occupies across every layer (keys + values). A cache
    /// holding `n` slots in each layer occupies exactly `n * bytes_per_token()`
    /// live bytes; the serving layer uses this to convert its byte pool into a
    /// block budget.
    pub fn bytes_per_token(&self) -> usize {
        self.layers.iter().map(LayerKvCache::bytes_per_slot).sum()
    }

    /// Clears every layer, returning all blocks to the pool.
    pub fn clear(&mut self) {
        for layer in &mut self.layers {
            layer.clear();
        }
    }
}

/// Validates the retained-slot contract: sorted, unique, in-bounds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSelection`] describing the first violation found.
pub fn validate_selection(retained: &[usize], live: usize) -> Result<(), CoreError> {
    let mut prev: Option<usize> = None;
    for &idx in retained {
        if idx >= live {
            return Err(CoreError::InvalidSelection(format!(
                "slot {idx} out of bounds for cache of {live} slots"
            )));
        }
        if let Some(p) = prev {
            if idx <= p {
                return Err(CoreError::InvalidSelection(format!(
                    "retained slots must be strictly increasing, saw {p} then {idx}"
                )));
            }
        }
        prev = Some(idx);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::OvercommitPolicy;

    fn filled_layer(slots: usize) -> LayerKvCache {
        filled_layer_in(slots, SharedBlockPool::unbounded(DEFAULT_BLOCK_SIZE))
    }

    fn filled_layer_in(slots: usize, pool: SharedBlockPool) -> LayerKvCache {
        let mut layer = LayerKvCache::with_pool(2, 3, pool);
        for i in 0..slots {
            let k = vec![vec![i as f32; 3], vec![i as f32 + 0.5; 3]];
            let v = vec![vec![10.0 + i as f32; 3], vec![20.0 + i as f32; 3]];
            layer.append(i, &k, &v).unwrap();
        }
        layer
    }

    #[test]
    fn append_grows_all_heads() {
        let layer = filled_layer(4);
        assert_eq!(layer.len(), 4);
        assert_eq!(layer.keys(0).shape(), (4, 3));
        assert_eq!(layer.values(1).shape(), (4, 3));
        assert_eq!(layer.positions(), &[0, 1, 2, 3]);
    }

    #[test]
    fn append_validates_shapes() {
        let mut layer = LayerKvCache::new(2, 3);
        // Wrong number of heads.
        assert!(layer.append(0, &[vec![0.0; 3]], &[vec![0.0; 3]]).is_err());
        // Wrong head_dim.
        assert!(layer
            .append(
                0,
                &[vec![0.0; 2], vec![0.0; 3]],
                &[vec![0.0; 3], vec![0.0; 3]]
            )
            .is_err());
    }

    #[test]
    fn slots_span_block_boundaries() {
        let pool = SharedBlockPool::unbounded(3);
        let layer = filled_layer_in(8, pool);
        assert_eq!(layer.num_blocks(), 3);
        assert_eq!(layer.allocated_slots(), 9);
        // Rows read back identically across the block seams.
        for slot in 0..8 {
            assert_eq!(&*layer.keys(0).row(slot), &[slot as f32; 3]);
            assert_eq!(&*layer.values(1).row(slot), &[20.0 + slot as f32; 3]);
        }
        assert_eq!(layer.keys(0).to_matrix().shape(), (8, 3));
    }

    #[test]
    fn append_batch_is_bit_identical_to_per_row_appends() {
        for dtype in [KvDtype::F32, KvDtype::U8] {
            // Block size 3, 8 rows: the batch spans block boundaries and (for
            // u8) triggers two quantize-on-seal events mid-batch.
            let mk = || LayerKvCache::with_pool_dtype(2, 3, SharedBlockPool::unbounded(3), dtype);
            let row = |r: usize, salt: f32| -> Vec<f32> {
                (0..6).map(|c| salt + r as f32 + 0.125 * c as f32).collect()
            };
            let mut looped = mk();
            let mut batched = mk();
            let mut flat_k = Vec::new();
            let mut flat_v = Vec::new();
            for r in 0..8 {
                let (k, v) = (row(r, 1.0), row(r, 50.0));
                looped.append_from_slices(10 + r, &k, &v).unwrap();
                flat_k.extend_from_slice(&k);
                flat_v.extend_from_slice(&v);
            }
            batched
                .append_batch_from_slices(10, 8, &flat_k, &flat_v)
                .unwrap();
            assert_eq!(batched.len(), looped.len());
            assert_eq!(batched.positions(), looped.positions());
            for head in 0..2 {
                for slot in 0..8 {
                    assert_eq!(
                        &*batched.keys(head).row(slot),
                        &*looped.keys(head).row(slot),
                        "{dtype:?} key diverged at head {head}, slot {slot}"
                    );
                    assert_eq!(
                        &*batched.values(head).row(slot),
                        &*looped.values(head).row(slot),
                        "{dtype:?} value diverged at head {head}, slot {slot}"
                    );
                }
            }
        }
    }

    #[test]
    fn append_batch_validates_slice_lengths() {
        let mut layer = LayerKvCache::new(2, 3);
        assert!(layer
            .append_batch_from_slices(0, 2, &[0.0; 11], &[0.0; 12])
            .is_err());
        assert!(layer
            .append_batch_from_slices(0, 2, &[0.0; 12], &[0.0; 12])
            .is_ok());
        assert_eq!(layer.len(), 2);
    }

    #[test]
    fn truncated_slice_hides_later_slots() {
        let pool = SharedBlockPool::unbounded(3);
        let layer = filled_layer_in(8, pool);
        let full = layer.keys(0);
        let causal = full.truncated(5);
        assert_eq!(causal.shape(), (5, 3));
        assert_eq!(&*causal.row(4), &*full.row(4));
        // vecmat over the truncated view only covers the visible slots.
        let paged = causal.vecmat(&[1.0; 5]).unwrap();
        let dense = full.to_matrix().gather_rows(&[0, 1, 2, 3, 4]);
        let reference = dense.vecmat(&[1.0; 5]).unwrap();
        for (a, b) in paged.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(full.truncated(8).len(), 8);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn truncated_slice_rejects_growth() {
        let layer = filled_layer(4);
        let _ = layer.keys(0).truncated(5);
    }

    #[test]
    fn blocks_needed_for_next_n_tokens_matches_single_token_case() {
        let pool = SharedBlockPool::unbounded(4);
        let mut cache = KvCache::with_pool(2, 2, 3, pool);
        for layer in cache.layers.iter_mut() {
            for i in 0..6 {
                let k = vec![vec![0.0; 3]; 2];
                layer.append(i, &k, &k).unwrap();
            }
        }
        // 6 slots fill 1.5 blocks of 4: 2 free slots per layer remain.
        assert_eq!(cache.blocks_needed_for_next_n_tokens(0), 0);
        assert_eq!(
            cache.blocks_needed_for_next_n_tokens(1),
            cache.blocks_needed_for_next_token()
        );
        assert_eq!(cache.blocks_needed_for_next_n_tokens(2), 0);
        assert_eq!(cache.blocks_needed_for_next_n_tokens(3), 2);
        assert_eq!(cache.blocks_needed_for_next_n_tokens(6), 2);
        assert_eq!(cache.blocks_needed_for_next_n_tokens(7), 4);
    }

    #[test]
    fn vecmat_matches_dense_matrix() {
        let pool = SharedBlockPool::unbounded(3);
        let layer = filled_layer_in(7, pool);
        let coeffs: Vec<f32> = (0..7).map(|i| 0.1 * i as f32).collect();
        let view = layer.values(0);
        let paged = view.vecmat(&coeffs).unwrap();
        let dense = view.to_matrix().vecmat(&coeffs).unwrap();
        for (a, b) in paged.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-5, "{paged:?} vs {dense:?}");
        }
        assert!(view.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn retain_slots_compacts_keys_values_positions() {
        let mut layer = filled_layer(5);
        layer.retain_slots(&[0, 3, 4]).unwrap();
        assert_eq!(layer.len(), 3);
        assert_eq!(layer.positions(), &[0, 3, 4]);
        assert_eq!(&*layer.keys(0).row(1), &[3.0, 3.0, 3.0]);
        assert_eq!(&*layer.values(1).row(2), &[24.0, 24.0, 24.0]);
    }

    #[test]
    fn retain_slots_across_blocks_releases_emptied_tail() {
        let pool = SharedBlockPool::unbounded(2);
        let mut layer = filled_layer_in(7, pool.clone());
        assert_eq!(pool.blocks_in_use(), 4);
        layer.retain_slots(&[1, 4, 6]).unwrap();
        assert_eq!(layer.len(), 3);
        assert_eq!(layer.num_blocks(), 2);
        assert_eq!(pool.blocks_in_use(), 2, "emptied blocks returned instantly");
        assert_eq!(layer.positions(), &[1, 4, 6]);
        assert_eq!(&*layer.keys(0).row(0), &[1.0; 3]);
        assert_eq!(&*layer.keys(0).row(1), &[4.0; 3]);
        assert_eq!(&*layer.keys(0).row(2), &[6.0; 3]);
        assert_eq!(&*layer.values(1).row(2), &[26.0; 3]);
        // Appending after compaction reuses the partially-filled tail block.
        let k = vec![vec![9.0; 3], vec![9.5; 3]];
        let v = vec![vec![19.0; 3], vec![29.0; 3]];
        layer.append(9, &k, &v).unwrap();
        assert_eq!(layer.num_blocks(), 2);
        assert_eq!(&*layer.keys(0).row(3), &[9.0; 3]);
    }

    #[test]
    fn retain_slots_rejects_bad_selections() {
        let mut layer = filled_layer(3);
        assert!(layer.retain_slots(&[0, 5]).is_err());
        assert!(layer.retain_slots(&[1, 1]).is_err());
        assert!(layer.retain_slots(&[2, 1]).is_err());
        // A valid empty selection clears the cache.
        layer.retain_slots(&[]).unwrap();
        assert!(layer.is_empty());
        assert_eq!(layer.num_blocks(), 0);
    }

    #[test]
    fn byte_size_tracks_slots() {
        let layer = filled_layer(4);
        // 2 heads * (keys + values) * 4 slots * 3 dims * 4 bytes.
        assert_eq!(layer.byte_size(), 2 * 2 * 4 * 3 * 4);
        // Block granularity rounds the footprint up to one 16-slot block.
        assert_eq!(layer.allocated_byte_size(), 16 * layer.bytes_per_slot());
    }

    #[test]
    fn bytes_per_slot_matches_observed_growth() {
        let layer = filled_layer(4);
        assert_eq!(layer.byte_size(), 4 * layer.bytes_per_slot());
        let empty = LayerKvCache::new(2, 3);
        assert_eq!(empty.bytes_per_slot(), layer.bytes_per_slot());
    }

    #[test]
    fn bytes_per_token_sums_layers() {
        let mut cache = KvCache::new(3, 2, 3);
        assert_eq!(cache.bytes_per_token(), 3 * 2 * 2 * 3 * 4);
        for l in 0..3 {
            let k = vec![vec![0.0; 3], vec![0.0; 3]];
            let v = k.clone();
            cache.layer_mut(l).append(0, &k, &v).unwrap();
        }
        assert_eq!(cache.byte_size(), cache.bytes_per_token());
    }

    #[test]
    fn clear_empties_layer() {
        let mut layer = filled_layer(3);
        let pool = layer.pool().clone();
        assert_eq!(pool.blocks_in_use(), 1);
        layer.clear();
        assert!(layer.is_empty());
        assert_eq!(layer.byte_size(), 0);
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn drop_returns_blocks_to_the_pool() {
        let pool = SharedBlockPool::unbounded(2);
        {
            let _layer = filled_layer_in(5, pool.clone());
            assert_eq!(pool.blocks_in_use(), 3);
        }
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn strict_pool_exhaustion_surfaces_as_error() {
        let pool = SharedBlockPool::bounded(2, 2, OvercommitPolicy::Strict).unwrap();
        let mut layer = LayerKvCache::with_pool(2, 3, pool);
        let k = vec![vec![0.0; 3], vec![0.0; 3]];
        let v = k.clone();
        for i in 0..4 {
            layer.append(i, &k, &v).unwrap();
        }
        assert!(matches!(
            layer.append(4, &k, &v),
            Err(CoreError::PoolExhausted { .. })
        ));
        assert_eq!(layer.len(), 4, "failed append leaves the cache consistent");
    }

    #[test]
    fn kv_cache_aggregates_layers() {
        let pool = SharedBlockPool::unbounded(4);
        let mut cache = KvCache::with_pool(3, 2, 3, pool);
        for l in 0..3 {
            let k = vec![vec![0.0; 3], vec![0.0; 3]];
            let v = k.clone();
            cache.layer_mut(l).append(0, &k, &v).unwrap();
        }
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.total_slots(), 3);
        assert_eq!(cache.total_blocks(), 3);
        assert_eq!(cache.total_allocated_slots(), 12);
        assert_eq!(cache.pool().blocks_in_use(), 3);
        assert!(cache.byte_size() > 0);
        assert!(cache.allocated_byte_size() >= cache.byte_size());
        // Every layer's last block has room: no allocation needed for the next token.
        assert_eq!(cache.blocks_needed_for_next_token(), 0);
        cache.clear();
        assert_eq!(cache.total_slots(), 0);
        assert_eq!(cache.pool().blocks_in_use(), 0);
        assert_eq!(cache.blocks_needed_for_next_token(), 3);
    }

    #[test]
    fn forked_layer_shares_blocks_until_either_side_writes() {
        let pool = SharedBlockPool::unbounded(4);
        let layer = filled_layer_in(6, pool.clone());
        assert_eq!(pool.blocks_in_use(), 2);
        let mut fork = layer.fork().unwrap();
        // Same physical blocks, refcounted twice, readable from both sides.
        assert_eq!(pool.blocks_in_use(), 2);
        assert_eq!(pool.shared_blocks(), 2);
        assert_eq!(layer.shared_block_count(), 2);
        assert_eq!(fork.keys(0).row(5), layer.keys(0).row(5));
        // The fork appends into the shared partial tail block: CoW forks it.
        let k = vec![vec![9.0; 3], vec![9.5; 3]];
        let v = vec![vec![19.0; 3], vec![29.0; 3]];
        fork.append(6, &k, &v).unwrap();
        assert_eq!(fork.cow_forks(), 1);
        assert_eq!(pool.blocks_in_use(), 3, "fork owns a private tail now");
        assert_eq!(pool.shared_blocks(), 1, "the full block stays shared");
        // The original never sees the fork's write.
        assert_eq!(layer.len(), 6);
        assert_eq!(&*layer.keys(0).row(5), &[5.0; 3]);
        assert_eq!(&*fork.keys(0).row(6), &[9.0; 3]);
        drop(fork);
        assert_eq!(pool.blocks_in_use(), 2);
        assert_eq!(pool.shared_blocks(), 0);
    }

    #[test]
    fn compaction_inside_a_shared_block_forks_not_corrupts() {
        let pool = SharedBlockPool::unbounded(2);
        let layer = filled_layer_in(6, pool.clone());
        let mut fork = layer.fork().unwrap();
        // Evict inside the shared blocks: every written block must fork.
        fork.retain_slots(&[0, 2, 5]).unwrap();
        assert!(fork.cow_forks() >= 1);
        assert_eq!(fork.positions(), &[0, 2, 5]);
        assert_eq!(&*fork.keys(0).row(1), &[2.0; 3]);
        // The donor still reads its original six slots, bit-identical.
        assert_eq!(layer.len(), 6);
        for slot in 0..6 {
            assert_eq!(&*layer.keys(0).row(slot), &[slot as f32; 3]);
            assert_eq!(&*layer.values(1).row(slot), &[20.0 + slot as f32; 3]);
        }
        // An aligned identity prefix stays shared: retaining [0, 1] keeps the
        // first block byte-identical, so no fork for it.
        let mut fork2 = layer.fork().unwrap();
        let before = fork2.cow_forks();
        fork2.retain_slots(&[0, 1]).unwrap();
        assert_eq!(fork2.cow_forks(), before, "identity prefix must not fork");
        assert_eq!(fork2.shared_block_count(), 1);
    }

    #[test]
    fn push_shared_block_maps_and_validates() {
        let pool = SharedBlockPool::unbounded(3);
        let donor = filled_layer_in(6, pool.clone());
        let mut reader = LayerKvCache::with_pool(2, 3, pool.clone());
        reader.push_shared_block(donor.shared_block(0)).unwrap();
        reader.push_shared_block(donor.shared_block(1)).unwrap();
        assert_eq!(reader.len(), 6);
        assert_eq!(reader.positions(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(&*reader.keys(0).row(4), &[4.0; 3]);
        assert_eq!(pool.blocks_in_use(), 2, "no new physical blocks");
        assert_eq!(pool.shared_blocks(), 2);
        // Shape and density violations are rejected.
        let mut wrong_shape = LayerKvCache::with_pool(1, 3, pool.clone());
        assert!(wrong_shape
            .push_shared_block(donor.shared_block(0))
            .is_err());
        drop(reader);
        assert_eq!(pool.shared_blocks(), 0);
        assert_eq!(pool.blocks_in_use(), 2);
    }

    #[test]
    fn kv_cache_fork_round_trip() {
        let pool = SharedBlockPool::unbounded(4);
        let mut cache = KvCache::with_pool(2, 2, 3, pool.clone());
        for l in 0..2 {
            for i in 0..5 {
                let k = vec![vec![i as f32; 3], vec![i as f32; 3]];
                let v = k.clone();
                cache.layer_mut(l).append(i, &k, &v).unwrap();
            }
        }
        let fork = cache.fork().unwrap();
        assert_eq!(fork.total_slots(), cache.total_slots());
        assert_eq!(cache.shared_block_count(), 4);
        assert_eq!(fork.shared_block_count(), 4);
        assert_eq!(cache.total_cow_forks() + fork.total_cow_forks(), 0);
        drop(cache);
        // The fork keeps every block alive on its own.
        assert_eq!(pool.blocks_in_use(), 4);
        assert_eq!(&*fork.layer(1).keys(0).row(4), &[4.0; 3]);
        drop(fork);
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn validate_selection_contract() {
        assert!(validate_selection(&[0, 1, 2], 3).is_ok());
        assert!(validate_selection(&[], 0).is_ok());
        assert!(validate_selection(&[3], 3).is_err());
        assert!(validate_selection(&[1, 0], 3).is_err());
        assert!(validate_selection(&[0, 0], 3).is_err());
    }

    /// Deterministic "random" value in roughly [-3, 3.5] for quantization tests.
    fn wiggle(i: usize, h: usize, salt: usize) -> f32 {
        let x = (i * 37 + h * 11 + salt * 101) % 131;
        x as f32 * 0.05 - 3.0
    }

    fn filled_layer_u8(slots: usize, pool: SharedBlockPool) -> LayerKvCache {
        let mut layer = LayerKvCache::with_pool_dtype(2, 3, pool, KvDtype::U8);
        append_wiggles(&mut layer, slots);
        layer
    }

    fn append_wiggles(layer: &mut LayerKvCache, slots: usize) {
        let start = layer.len();
        for i in start..start + slots {
            let k: Vec<Vec<f32>> = (0..2)
                .map(|h| (0..3).map(|d| wiggle(i, h, d)).collect())
                .collect();
            let v: Vec<Vec<f32>> = (0..2)
                .map(|h| (0..3).map(|d| wiggle(i, h, d + 7)).collect())
                .collect();
            layer.append(i, &k, &v).unwrap();
        }
    }

    #[test]
    fn affine_round_trip_error_bounded_by_half_step() {
        let values: Vec<f32> = (0..200).map(|i| wiggle(i, i % 3, 2)).collect();
        let map = Affine::for_values(values.iter());
        let half_step = map.scale / 2.0;
        for &f in &values {
            let err = (map.dequantize(map.quantize(f)) - f).abs();
            assert!(
                err <= half_step * 1.0001,
                "err {err} > half step {half_step}"
            );
        }
        // Range endpoints are exact.
        let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(map.quantize(min), 0);
        assert_eq!(map.quantize(max), 255);
        assert_eq!(map.dequantize(0), min);
        assert_eq!(map.dequantize(255), max);
        // A constant block encodes exactly.
        let flat = Affine::for_range(1.25, 1.25);
        assert_eq!(flat.dequantize(flat.quantize(1.25)), 1.25);
    }

    #[test]
    fn u8_layer_seals_full_blocks_and_stages_the_tail() {
        let pool = SharedBlockPool::unbounded(4);
        let layer = filled_layer_u8(6, pool);
        assert_eq!(layer.dtype(), KvDtype::U8);
        // First block (4 rows) sealed to u8, tail (2 rows) staged in f32.
        assert_eq!(layer.blocks[0].data.storage_dtype(), KvDtype::U8);
        assert_eq!(layer.blocks[1].data.storage_dtype(), KvDtype::F32);
        // Accounting charges the sealed representation: a quarter of f32.
        let f32_layer = LayerKvCache::new(2, 3);
        assert_eq!(layer.bytes_per_slot() * 4, f32_layer.bytes_per_slot());
        // Sealed reads stay within the affine half-step of what was written;
        // staged tail reads are exact.
        for slot in 0..6 {
            for h in 0..2 {
                let key = layer.keys(h).row(slot);
                for (d, got) in key.iter().enumerate() {
                    let want = wiggle(slot, h, d);
                    let tol = if slot < 4 { 0.05 } else { 0.0 };
                    assert!(
                        (got - want).abs() <= tol,
                        "slot {slot} head {h} dim {d}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn u8_fused_vecmat_matches_row_dequantized_dense_product() {
        let pool = SharedBlockPool::unbounded(4);
        let layer = filled_layer_u8(10, pool);
        let coeffs: Vec<f32> = (0..10)
            .map(|i| if i % 3 == 0 { 0.0 } else { 0.1 * i as f32 })
            .collect();
        for h in 0..2 {
            let view = layer.values(h);
            let fused = view.vecmat(&coeffs).unwrap();
            // to_matrix() dequantizes row-by-row; its vecmat is the unfused
            // reference the factored accumulation must agree with.
            let dense = view.to_matrix().vecmat(&coeffs).unwrap();
            for (a, b) in fused.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-4, "{fused:?} vs {dense:?}");
            }
        }
    }

    #[test]
    fn quantized_fork_and_compaction_read_identical_to_never_shared() {
        let pool = SharedBlockPool::unbounded(4);
        let mut shared = filled_layer_u8(11, pool.clone());
        let fork = shared.fork().unwrap();
        let mut control = filled_layer_u8(11, SharedBlockPool::unbounded(4));
        let keep = [0, 2, 3, 5, 8, 9, 10];
        shared.retain_slots(&keep).unwrap();
        control.retain_slots(&keep).unwrap();
        // The compacted shared layer reads bit-identically to a layer that was
        // never shared: CoW forking + unseal/reseal is deterministic.
        for slot in 0..keep.len() {
            for h in 0..2 {
                assert_eq!(shared.keys(h).row(slot), control.keys(h).row(slot));
                assert_eq!(shared.values(h).row(slot), control.values(h).row(slot));
            }
        }
        // The fork still reads the pre-compaction content of its sealed blocks.
        let expected = filled_layer_u8(11, SharedBlockPool::unbounded(4));
        for slot in 0..11 {
            assert_eq!(fork.keys(0).row(slot), expected.keys(0).row(slot));
        }
        assert!(
            shared.cow_forks() > 0,
            "compaction wrote into shared blocks"
        );
    }

    #[test]
    fn u8_compaction_releases_tail_blocks_and_reseals_full_blocks() {
        let pool = SharedBlockPool::unbounded(4);
        let mut layer = filled_layer_u8(12, pool.clone());
        assert_eq!(pool.blocks_in_use(), 3);
        layer.retain_slots(&[0, 1, 2, 3, 5, 6, 7, 8]).unwrap();
        assert_eq!(pool.blocks_in_use(), 2);
        // Both kept blocks are full again, so both must be resealed.
        for block in &layer.blocks {
            assert_eq!(block.data.storage_dtype(), KvDtype::U8);
        }
        // Appending afterwards opens a fresh f32 staging tail.
        append_wiggles(&mut layer, 1);
        assert_eq!(layer.blocks[2].data.storage_dtype(), KvDtype::F32);
    }

    #[test]
    fn push_shared_block_rejects_dtype_mismatch() {
        let pool = SharedBlockPool::unbounded(4);
        let f32_donor = filled_layer_in(4, pool.clone());
        let u8_donor = filled_layer_u8(4, pool.clone());
        let mut u8_layer = LayerKvCache::with_pool_dtype(2, 3, pool.clone(), KvDtype::U8);
        let mut f32_layer = LayerKvCache::with_pool(2, 3, pool);
        assert!(u8_layer
            .push_shared_block(f32_donor.shared_block(0))
            .is_err());
        assert!(f32_layer
            .push_shared_block(u8_donor.shared_block(0))
            .is_err());
        // Matching dtypes map fine.
        u8_layer
            .push_shared_block(u8_donor.shared_block(0))
            .unwrap();
        f32_layer
            .push_shared_block(f32_donor.shared_block(0))
            .unwrap();
        assert_eq!(u8_layer.len(), 4);
        assert_eq!(f32_layer.len(), 4);
    }

    #[test]
    fn kv_slice_into_variants_match_allocating_reads() {
        let layers = [
            filled_layer_in(7, SharedBlockPool::unbounded(3)),
            filled_layer_u8(10, SharedBlockPool::unbounded(4)),
        ];
        for layer in &layers {
            let n = layer.len();
            let coeffs: Vec<f32> = (0..n)
                .map(|i| if i % 3 == 0 { 0.0 } else { 0.1 * i as f32 })
                .collect();
            for h in 0..2 {
                for view in [layer.keys(h), layer.values(h)] {
                    let mut buf = vec![0.0f32; 3];
                    let mut scratch = vec![0.0f32; 3];
                    for slot in 0..n {
                        view.copy_row_into(slot, &mut buf);
                        assert_eq!(buf.as_slice(), &*view.row(slot));
                    }
                    let mut visited = 0;
                    view.for_each_row(&mut scratch, |slot, row| {
                        assert_eq!(slot, visited);
                        assert_eq!(row, &*view.row(slot));
                        visited += 1;
                    });
                    assert_eq!(visited, n);
                    let mut out = vec![9.0f32; 3];
                    view.vecmat_into(&coeffs, &mut out, &mut scratch).unwrap();
                    assert_eq!(out, view.vecmat(&coeffs).unwrap());
                    assert!(view.vecmat_into(&[1.0], &mut out, &mut scratch).is_err());
                }
            }
        }
    }

    #[test]
    fn append_from_slices_matches_append() {
        for dtype in [KvDtype::F32, KvDtype::U8] {
            let pool = SharedBlockPool::unbounded(3);
            let mut a = LayerKvCache::with_pool_dtype(2, 3, pool.clone(), dtype);
            let mut b = LayerKvCache::with_pool_dtype(2, 3, pool, dtype);
            for i in 0..7 {
                let k: Vec<Vec<f32>> = (0..2)
                    .map(|h| (0..3).map(|d| wiggle(i, h, d)).collect())
                    .collect();
                let v: Vec<Vec<f32>> = (0..2)
                    .map(|h| (0..3).map(|d| wiggle(i, h, d + 7)).collect())
                    .collect();
                a.append(i, &k, &v).unwrap();
                b.append_from_slices(i, &k.concat(), &v.concat()).unwrap();
            }
            for slot in 0..7 {
                for h in 0..2 {
                    assert_eq!(a.keys(h).row(slot), b.keys(h).row(slot));
                    assert_eq!(a.values(h).row(slot), b.values(h).row(slot));
                }
            }
            assert!(b.append_from_slices(9, &[0.0; 5], &[0.0; 6]).is_err());
        }
    }

    #[test]
    fn block_generations_survive_appends_and_track_rewrites() {
        let pool = SharedBlockPool::unbounded(4);
        let mut layer = filled_layer_in(5, pool.clone());
        let gen0 = layer.block_meta(0).generation;
        let gen1 = layer.block_meta(1).generation;
        assert_ne!(gen0, gen1, "generations are globally unique");
        // Plain appends grow rows but keep the generation.
        append_wiggles(&mut layer, 1);
        assert_eq!(layer.block_meta(0).generation, gen0);
        assert_eq!(layer.block_meta(1).generation, gen1);
        assert_eq!(layer.block_meta(1).rows, 2);
        // A CoW fork writing the shared tail gets a fresh generation; the
        // donor's copy keeps its own.
        let mut fork = layer.fork().unwrap();
        assert_eq!(fork.block_meta(1).generation, gen1, "fork preserves");
        append_wiggles(&mut fork, 1);
        assert_ne!(fork.block_meta(1).generation, gen1);
        assert_eq!(layer.block_meta(1).generation, gen1);
        // Compaction: the identity prefix keeps its generation, every written
        // block is refreshed.
        layer.retain_slots(&[0, 1, 2, 3, 5]).unwrap();
        assert_eq!(layer.block_meta(0).generation, gen0);
        assert_ne!(layer.block_meta(1).generation, gen1);
    }

    #[test]
    fn seal_on_fill_bumps_generation() {
        let pool = SharedBlockPool::unbounded(4);
        let mut layer = LayerKvCache::with_pool_dtype(2, 3, pool, KvDtype::U8);
        append_wiggles(&mut layer, 3);
        let staged = layer.block_meta(0);
        assert_eq!(staged.rows, 3);
        append_wiggles(&mut layer, 1);
        let sealed = layer.block_meta(0);
        assert_eq!(sealed.rows, 4);
        assert_eq!(sealed.id, staged.id);
        assert_ne!(
            sealed.generation, staged.generation,
            "quantize-on-seal rewrites every existing row's dequantized value"
        );
    }

    #[test]
    fn shared_prefix_blocks_keep_generation_across_attach() {
        let pool = SharedBlockPool::unbounded(3);
        let donor = filled_layer_in(6, pool.clone());
        let donor_gen = donor.block_meta(0).generation;
        let mut reader = LayerKvCache::with_pool(2, 3, pool);
        reader.push_shared_block(donor.shared_block(0)).unwrap();
        assert_eq!(reader.block_meta(0).generation, donor_gen);
    }

    #[test]
    fn kv_cache_dtype_constructor_threads_through_layers() {
        let pool = SharedBlockPool::unbounded(4);
        let cache = KvCache::with_pool_dtype(3, 2, 3, pool, KvDtype::U8);
        assert_eq!(cache.dtype(), KvDtype::U8);
        for layer in cache.iter() {
            assert_eq!(layer.dtype(), KvDtype::U8);
        }
        // u8 tokens cost a quarter of the f32 bytes.
        let f32_cache = KvCache::new(3, 2, 3);
        assert_eq!(cache.bytes_per_token() * 4, f32_cache.bytes_per_token());
    }
}

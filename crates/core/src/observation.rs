//! Per-step attention observations handed to cache policies.

use serde::{Deserialize, Serialize};

/// Which phase of generative inference a decode step belongs to.
///
/// The paper distinguishes the two phases because Keyformer keeps the temperature at
/// `tau_init` during prompt processing (no tokens have been discarded yet) and anneals
/// it towards `tau_end` across the token-generation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Prompt processing: the whole context is visible, the KV cache is being filled.
    Prompt,
    /// Autoregressive token generation over the reduced KV cache.
    Generation,
}

impl Phase {
    /// Returns `true` for the token-generation phase.
    pub fn is_generation(self) -> bool {
        matches!(self, Phase::Generation)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Prompt => write!(f, "prompt"),
            Phase::Generation => write!(f, "generation"),
        }
    }
}

/// One attention head's view of a single decode step.
///
/// `logits` holds the *unnormalized* attention logits `x_i = q · k_i / sqrt(d)` of the
/// current query against every live KV-cache slot of `layer`, in slot order. Policies
/// that score tokens (H2O, Keyformer, the damped variant) accumulate from these; the
/// purely structural policies (window, sinks) ignore them.
#[derive(Debug, Clone, Copy)]
pub struct AttentionObservation<'a> {
    /// Decoder layer index the observation came from.
    pub layer: usize,
    /// Attention head index within the layer.
    pub head: usize,
    /// Inference phase of this step.
    pub phase: Phase,
    /// Decode iteration `t` (0-based). During the prompt phase this is the index of
    /// the prompt token being processed; during generation it counts generated tokens.
    pub step: usize,
    /// Planned text-generation length `T`, used by temperature schedules.
    pub total_steps: usize,
    /// Unnormalized attention logits against each live cache slot.
    pub logits: &'a [f32],
}

impl<'a> AttentionObservation<'a> {
    /// Number of live cache slots covered by this observation.
    pub fn live_slots(&self) -> usize {
        self.logits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_display_and_predicate() {
        assert_eq!(Phase::Prompt.to_string(), "prompt");
        assert_eq!(Phase::Generation.to_string(), "generation");
        assert!(Phase::Generation.is_generation());
        assert!(!Phase::Prompt.is_generation());
    }

    #[test]
    fn observation_reports_live_slots() {
        let logits = [0.0, 1.0, 2.0];
        let obs = AttentionObservation {
            layer: 1,
            head: 2,
            phase: Phase::Generation,
            step: 5,
            total_steps: 10,
            logits: &logits,
        };
        assert_eq!(obs.live_slots(), 3);
    }
}

//! The paged KV-cache allocator: fixed-size token blocks handed out from a
//! shared, refcounted pool.
//!
//! Contiguous per-sequence KV buffers waste a serving pool twice: transient
//! prefill spikes hold bytes the steady state never needs, and per-session
//! fragmentation strands the rest. A [`BlockPool`] manages memory at the
//! granularity of *blocks* — [`BlockPool::block_size`] token slots of one
//! decoder layer — so freed capacity is immediately reusable by any other
//! sequence, the way vLLM-style paged attention does it.
//!
//! The pool does double duty:
//!
//! 1. **Allocation.** [`LayerKvCache`](crate::cache::LayerKvCache) draws a block
//!    whenever its last block fills and releases blocks the moment an eviction
//!    or retirement empties them. Blocks are refcounted ([`BlockPool::retain`] /
//!    [`BlockPool::release`]) so future sharing (e.g. common-prefix caching) can
//!    map one physical block into several sequences.
//! 2. **Reservation.** The serving scheduler reserves each request's
//!    steady-state block count at admission ([`BlockPool::try_reserve`]) and
//!    returns it at retirement, which replaces projected-byte guessing with
//!    block-accurate admission.
//!
//! Two capacity disciplines are supported ([`OvercommitPolicy`]): the default
//! [`AllowTransient`](OvercommitPolicy::AllowTransient) lets allocations exceed
//! the capacity during prefill spikes (the overshoot is tracked and reported in
//! [`BlockPoolStats`]), while [`Strict`](OvercommitPolicy::Strict) hard-fails
//! allocations past capacity — the mode chunked, resumable prefill is built for.
//!
//! ```
//! use keyformer_core::block::{BlockPool, OvercommitPolicy};
//!
//! let mut pool = BlockPool::bounded(16, 2, OvercommitPolicy::Strict)?;
//! let a = pool.alloc()?;
//! let b = pool.alloc()?;
//! assert!(pool.alloc().is_err(), "capacity is enforced");
//! pool.release(a)?;
//! assert_eq!(pool.blocks_free(), 1);
//! let _reusable = pool.alloc()?; // freed blocks are immediately reusable
//! pool.release(b)?;
//! # Ok::<(), keyformer_core::CoreError>(())
//! ```

use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Default number of token slots per block.
///
/// Small enough that per-sequence internal fragmentation stays under one
/// block's worth of slots per layer, large enough that the allocator is off the
/// per-token hot path (one allocation every `16` appended tokens per layer).
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// Identifier of one physical block within its pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// The raw index of this block within its pool.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// What the pool does when an allocation would exceed its block capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OvercommitPolicy {
    /// Allocations past capacity succeed; the overshoot is tracked in
    /// [`BlockPoolStats::peak_in_use`]. This reproduces the PR 2 serving
    /// behaviour, where the prefill transient was documented headroom rather
    /// than enforced.
    AllowTransient,
    /// Allocations past capacity fail with [`CoreError::PoolExhausted`]. Callers
    /// (chunked prefill) are expected to pause and retry once blocks free up.
    Strict,
}

/// A point-in-time snapshot of a pool's accounting, serializable for the
/// paging experiment's `BENCH_paging.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockPoolStats {
    /// Token slots per block.
    pub block_size: usize,
    /// Block capacity (`None` for an unbounded pool).
    pub capacity_blocks: Option<usize>,
    /// Blocks currently allocated (refcount > 0).
    pub in_use: usize,
    /// Blocks currently reserved by admission control.
    pub reserved: usize,
    /// High-water mark of `in_use` over the pool's lifetime.
    pub peak_in_use: usize,
    /// High-water mark of `reserved` over the pool's lifetime.
    pub peak_reserved: usize,
    /// Total allocations performed.
    pub total_allocs: u64,
    /// Total blocks returned.
    pub total_frees: u64,
    /// Blocks currently mapped by more than one holder (refcount > 1) — the
    /// prefix-sharing working set.
    pub shared_blocks: usize,
    /// High-water mark of `shared_blocks` over the pool's lifetime.
    pub peak_shared_blocks: usize,
}

impl BlockPoolStats {
    /// Largest number of blocks the pool was ever over its capacity (0 for
    /// unbounded or never-overshooting pools) — the transient the
    /// `AllowTransient` discipline absorbed.
    pub fn peak_overshoot(&self) -> usize {
        match self.capacity_blocks {
            Some(cap) => self.peak_in_use.saturating_sub(cap),
            None => 0,
        }
    }
}

/// A fixed-block allocator with refcounted blocks and admission reservations.
///
/// See the [module docs](self) for the role it plays in the serving stack.
#[derive(Debug)]
pub struct BlockPool {
    block_size: usize,
    capacity_blocks: usize,
    overcommit: OvercommitPolicy,
    /// Refcount per ever-issued block id; 0 means free.
    refcounts: Vec<u32>,
    /// Ids with refcount 0, ready for reuse.
    free_ids: Vec<u32>,
    in_use: usize,
    reserved: usize,
    peak_in_use: usize,
    peak_reserved: usize,
    total_allocs: u64,
    total_frees: u64,
    /// Blocks with refcount > 1 right now.
    shared: usize,
    peak_shared: usize,
}

impl BlockPool {
    /// Creates a pool of at most `capacity_blocks` blocks of `block_size` slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `block_size` or `capacity_blocks`
    /// is zero.
    pub fn bounded(
        block_size: usize,
        capacity_blocks: usize,
        overcommit: OvercommitPolicy,
    ) -> Result<Self, CoreError> {
        if block_size == 0 {
            return Err(CoreError::InvalidConfig(
                "block size must be at least 1 token slot".into(),
            ));
        }
        if capacity_blocks == 0 {
            return Err(CoreError::InvalidConfig(
                "block pool must hold at least 1 block".into(),
            ));
        }
        Ok(BlockPool {
            block_size,
            capacity_blocks,
            overcommit,
            refcounts: Vec::new(),
            free_ids: Vec::new(),
            in_use: 0,
            reserved: 0,
            peak_in_use: 0,
            peak_reserved: 0,
            total_allocs: 0,
            total_frees: 0,
            shared: 0,
            peak_shared: 0,
        })
    }

    /// Creates a pool with no capacity limit (standalone sessions outside a
    /// serving pool).
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn unbounded(block_size: usize) -> Self {
        BlockPool::bounded(block_size, usize::MAX, OvercommitPolicy::AllowTransient)
            .expect("non-zero block size")
    }

    /// Token slots per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Block capacity, or `None` when unbounded.
    pub fn capacity_blocks(&self) -> Option<usize> {
        (self.capacity_blocks != usize::MAX).then_some(self.capacity_blocks)
    }

    /// The pool's overcommit discipline.
    pub fn overcommit(&self) -> OvercommitPolicy {
        self.overcommit
    }

    /// Blocks currently allocated.
    pub fn blocks_in_use(&self) -> usize {
        self.in_use
    }

    /// Blocks currently available before the capacity is reached
    /// (`usize::MAX` for unbounded pools; 0 when overshooting).
    pub fn blocks_free(&self) -> usize {
        if self.capacity_blocks == usize::MAX {
            usize::MAX
        } else {
            self.capacity_blocks.saturating_sub(self.in_use)
        }
    }

    /// Blocks currently reserved by admission control.
    pub fn blocks_reserved(&self) -> usize {
        self.reserved
    }

    /// `true` when `extra` more blocks can be allocated without exceeding the
    /// capacity. Always `true` for unbounded or `AllowTransient` pools.
    pub fn can_allocate(&self, extra: usize) -> bool {
        match self.overcommit {
            OvercommitPolicy::AllowTransient => true,
            OvercommitPolicy::Strict => {
                self.capacity_blocks == usize::MAX
                    || self.in_use.saturating_add(extra) <= self.capacity_blocks
            }
        }
    }

    /// `true` when the calling session — currently holding `own_in_use` blocks
    /// against a reservation of `own_reserved` — can allocate `needed` more
    /// blocks without making any *other* session's reservation unsatisfiable.
    ///
    /// This is the pre-flight chunked prefill runs before growing past its
    /// reservation on a strict pool: a raw capacity check
    /// ([`BlockPool::can_allocate`]) would let the prefill transient consume
    /// blocks a decoder has reserved but not yet allocated (e.g. the
    /// `capacity + 1` decode-step slot of a block-aligned budget), turning the
    /// decoder's guaranteed allocation into a spurious failure. Assumes every
    /// session other than the caller stays within its reservation, which the
    /// scheduler guarantees by serializing transient-overshooting prefills.
    /// Always `true` for unbounded or `AllowTransient` pools.
    pub fn can_allocate_transient(
        &self,
        needed: usize,
        own_in_use: usize,
        own_reserved: usize,
    ) -> bool {
        match self.overcommit {
            OvercommitPolicy::AllowTransient => true,
            OvercommitPolicy::Strict => {
                if self.capacity_blocks == usize::MAX {
                    return true;
                }
                let others_reserved = self.reserved.saturating_sub(own_reserved);
                let others_in_use = self.in_use.saturating_sub(own_in_use);
                let owed_to_others = others_reserved.saturating_sub(others_in_use);
                self.in_use
                    .saturating_add(needed)
                    .saturating_add(owed_to_others)
                    <= self.capacity_blocks
            }
        }
    }

    /// The largest `needed` for which [`BlockPool::can_allocate_transient`]
    /// would return `true` right now (`usize::MAX` for unbounded or
    /// `AllowTransient` pools).
    ///
    /// Chunk-batched prefill reads this once per chunk — a single lock
    /// round-trip — and sizes the chunk prefix it forwards to the headroom,
    /// instead of asking `can_allocate_transient` once per token.
    pub fn max_transient_blocks(&self, own_in_use: usize, own_reserved: usize) -> usize {
        match self.overcommit {
            OvercommitPolicy::AllowTransient => usize::MAX,
            OvercommitPolicy::Strict => {
                if self.capacity_blocks == usize::MAX {
                    return usize::MAX;
                }
                let others_reserved = self.reserved.saturating_sub(own_reserved);
                let others_in_use = self.in_use.saturating_sub(own_in_use);
                let owed_to_others = others_reserved.saturating_sub(others_in_use);
                self.capacity_blocks
                    .saturating_sub(self.in_use)
                    .saturating_sub(owed_to_others)
            }
        }
    }

    /// Allocates one block with refcount 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PoolExhausted`] under
    /// [`OvercommitPolicy::Strict`] once the capacity is reached.
    pub fn alloc(&mut self) -> Result<BlockId, CoreError> {
        if !self.can_allocate(1) {
            return Err(CoreError::PoolExhausted {
                in_use: self.in_use,
                capacity: self.capacity_blocks,
            });
        }
        let id = match self.free_ids.pop() {
            Some(id) => id,
            None => {
                let id = u32::try_from(self.refcounts.len()).expect("block ids fit in u32");
                self.refcounts.push(0);
                id
            }
        };
        self.refcounts[id as usize] = 1;
        self.in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        self.total_allocs += 1;
        Ok(BlockId(id))
    }

    /// Increments a block's refcount (shared mappings).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if the block is not currently
    /// allocated, leaving the pool untouched — a bookkeeping bug in a caller
    /// retires that caller's request instead of panicking the scheduler.
    pub fn retain(&mut self, id: BlockId) -> Result<(), CoreError> {
        let Some(rc) = self.refcounts.get_mut(id.0 as usize).filter(|rc| **rc > 0) else {
            return Err(CoreError::InvalidBlock {
                id: id.0,
                op: "retain",
            });
        };
        *rc += 1;
        if *rc == 2 {
            self.shared += 1;
            self.peak_shared = self.peak_shared.max(self.shared);
        }
        Ok(())
    }

    /// Decrements a block's refcount, freeing the block (and making its id
    /// immediately reusable) when the count reaches zero.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if the block is not currently
    /// allocated, leaving the pool untouched.
    pub fn release(&mut self, id: BlockId) -> Result<(), CoreError> {
        let Some(rc) = self.refcounts.get_mut(id.0 as usize).filter(|rc| **rc > 0) else {
            return Err(CoreError::InvalidBlock {
                id: id.0,
                op: "release",
            });
        };
        *rc -= 1;
        if *rc == 1 {
            self.shared -= 1;
        }
        if *rc == 0 {
            self.in_use -= 1;
            self.total_frees += 1;
            self.free_ids.push(id.0);
        }
        Ok(())
    }

    /// Atomic copy-on-write fork probe: decides in one step whether a writer
    /// mapping `old` needs a private copy, and if so allocates the replacement
    /// block and releases the writer's mapping of `old`.
    ///
    /// Returns `Ok(None)` when `old` is privately mapped (refcount 1) — the
    /// caller may write in place. Returns `Ok(Some(new_id))` when `old` is
    /// shared: the caller now owns `new_id` and no longer maps `old` (whose
    /// refcount was above 1, so it is never freed here). Doing both sides of
    /// the decision under one pool lock acquisition is what lets concurrent
    /// decode threads race writes to a shared block safely: the lock
    /// linearizes the probes, so exactly one racer can observe the block
    /// private.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if `old` is not currently allocated
    /// and [`CoreError::PoolExhausted`] if the fork needs a block a strict pool
    /// does not have; the pool is left untouched either way.
    pub fn fork_block(&mut self, old: BlockId) -> Result<Option<BlockId>, CoreError> {
        match self.refcounts.get(old.0 as usize).copied() {
            None | Some(0) => Err(CoreError::InvalidBlock {
                id: old.0,
                op: "fork",
            }),
            Some(1) => Ok(None),
            Some(_) => {
                let new_id = self.alloc()?;
                self.release(old)
                    .expect("shared block stays allocated during fork");
                Ok(Some(new_id))
            }
        }
    }

    /// Current refcount of a block (0 when free).
    pub fn refcount(&self, id: BlockId) -> u32 {
        self.refcounts.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Blocks currently mapped by more than one holder.
    pub fn shared_blocks(&self) -> usize {
        self.shared
    }

    /// Reserves `blocks` against the capacity if they fit alongside the
    /// existing reservations; returns whether the reservation was taken.
    /// Reservations are pure admission accounting — they do not move blocks.
    pub fn try_reserve(&mut self, blocks: usize) -> bool {
        if self.capacity_blocks != usize::MAX
            && self.reserved.saturating_add(blocks) > self.capacity_blocks
        {
            return false;
        }
        self.reserved += blocks;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        true
    }

    /// Returns a reservation taken with [`BlockPool::try_reserve`].
    pub fn unreserve(&mut self, blocks: usize) {
        self.reserved = self.reserved.saturating_sub(blocks);
    }

    /// Point-in-time accounting snapshot.
    pub fn stats(&self) -> BlockPoolStats {
        BlockPoolStats {
            block_size: self.block_size,
            capacity_blocks: self.capacity_blocks(),
            in_use: self.in_use,
            reserved: self.reserved,
            peak_in_use: self.peak_in_use,
            peak_reserved: self.peak_reserved,
            total_allocs: self.total_allocs,
            total_frees: self.total_frees,
            shared_blocks: self.shared,
            peak_shared_blocks: self.peak_shared,
        }
    }
}

/// A cloneable handle to a [`BlockPool`] shared by every layer cache of every
/// session admitted against it.
///
/// The handle is `Send + Sync`; the scheduler, the sessions and their layer
/// caches all hold clones of one handle, so a block freed by any layer's
/// eviction is instantly allocatable by any other sequence.
#[derive(Debug, Clone)]
pub struct SharedBlockPool {
    inner: Arc<Mutex<BlockPool>>,
}

impl SharedBlockPool {
    /// Wraps a pool in a shared handle.
    pub fn new(pool: BlockPool) -> Self {
        SharedBlockPool {
            inner: Arc::new(Mutex::new(pool)),
        }
    }

    /// Shared handle to a bounded pool; see [`BlockPool::bounded`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `block_size` or
    /// `capacity_blocks` is zero.
    pub fn bounded(
        block_size: usize,
        capacity_blocks: usize,
        overcommit: OvercommitPolicy,
    ) -> Result<Self, CoreError> {
        Ok(Self::new(BlockPool::bounded(
            block_size,
            capacity_blocks,
            overcommit,
        )?))
    }

    /// Shared handle to an unbounded pool; see [`BlockPool::unbounded`].
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn unbounded(block_size: usize) -> Self {
        Self::new(BlockPool::unbounded(block_size))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BlockPool> {
        self.inner.lock().expect("block pool lock poisoned")
    }

    /// See [`BlockPool::block_size`].
    pub fn block_size(&self) -> usize {
        self.lock().block_size()
    }

    /// See [`BlockPool::capacity_blocks`].
    pub fn capacity_blocks(&self) -> Option<usize> {
        self.lock().capacity_blocks()
    }

    /// See [`BlockPool::overcommit`].
    pub fn overcommit(&self) -> OvercommitPolicy {
        self.lock().overcommit()
    }

    /// See [`BlockPool::blocks_in_use`].
    pub fn blocks_in_use(&self) -> usize {
        self.lock().blocks_in_use()
    }

    /// See [`BlockPool::blocks_free`].
    pub fn blocks_free(&self) -> usize {
        self.lock().blocks_free()
    }

    /// See [`BlockPool::blocks_reserved`].
    pub fn blocks_reserved(&self) -> usize {
        self.lock().blocks_reserved()
    }

    /// See [`BlockPool::can_allocate`].
    pub fn can_allocate(&self, extra: usize) -> bool {
        self.lock().can_allocate(extra)
    }

    /// See [`BlockPool::can_allocate_transient`].
    pub fn can_allocate_transient(
        &self,
        needed: usize,
        own_in_use: usize,
        own_reserved: usize,
    ) -> bool {
        self.lock()
            .can_allocate_transient(needed, own_in_use, own_reserved)
    }

    /// See [`BlockPool::max_transient_blocks`].
    pub fn max_transient_blocks(&self, own_in_use: usize, own_reserved: usize) -> usize {
        self.lock().max_transient_blocks(own_in_use, own_reserved)
    }

    /// See [`BlockPool::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PoolExhausted`] under
    /// [`OvercommitPolicy::Strict`] once the capacity is reached.
    pub fn alloc(&self) -> Result<BlockId, CoreError> {
        self.lock().alloc()
    }

    /// See [`BlockPool::retain`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if the block is not currently
    /// allocated.
    pub fn retain(&self, id: BlockId) -> Result<(), CoreError> {
        self.lock().retain(id)
    }

    /// See [`BlockPool::release`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if the block is not currently
    /// allocated.
    pub fn release(&self, id: BlockId) -> Result<(), CoreError> {
        self.lock().release(id)
    }

    /// See [`BlockPool::fork_block`]. The probe-allocate-release sequence runs
    /// under a single lock acquisition, which is what makes concurrent
    /// copy-on-write decisions race-free.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if `old` is not currently allocated
    /// and [`CoreError::PoolExhausted`] if a strict pool cannot supply the
    /// fork's block.
    pub fn fork_block(&self, old: BlockId) -> Result<Option<BlockId>, CoreError> {
        self.lock().fork_block(old)
    }

    /// See [`BlockPool::refcount`].
    pub fn refcount(&self, id: BlockId) -> u32 {
        self.lock().refcount(id)
    }

    /// See [`BlockPool::shared_blocks`].
    pub fn shared_blocks(&self) -> usize {
        self.lock().shared_blocks()
    }

    /// `true` when `other` is a handle to the same underlying pool.
    pub fn same_pool(&self, other: &SharedBlockPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// See [`BlockPool::try_reserve`].
    pub fn try_reserve(&self, blocks: usize) -> bool {
        self.lock().try_reserve(blocks)
    }

    /// See [`BlockPool::unreserve`].
    pub fn unreserve(&self, blocks: usize) {
        self.lock().unreserve(blocks)
    }

    /// See [`BlockPool::stats`].
    pub fn stats(&self) -> BlockPoolStats {
        self.lock().stats()
    }
}

/// Blocks needed to hold `slots` token slots of one layer at the given block
/// size — the unit of the serving layer's admission arithmetic.
pub fn blocks_for_slots(slots: usize, block_size: usize) -> usize {
    slots.div_ceil(block_size.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(BlockPool::bounded(0, 4, OvercommitPolicy::Strict).is_err());
        assert!(BlockPool::bounded(16, 0, OvercommitPolicy::Strict).is_err());
    }

    #[test]
    fn alloc_free_recycles_ids() {
        let mut pool = BlockPool::unbounded(8);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.blocks_in_use(), 2);
        pool.release(a).unwrap();
        assert_eq!(pool.blocks_in_use(), 1);
        let c = pool.alloc().unwrap();
        assert_eq!(c, a, "freed ids are recycled before new ones are issued");
        let stats = pool.stats();
        assert_eq!(stats.total_allocs, 3);
        assert_eq!(stats.total_frees, 1);
        assert_eq!(stats.peak_in_use, 2);
        assert_eq!(stats.capacity_blocks, None);
    }

    #[test]
    fn strict_pools_enforce_capacity() {
        let mut pool = BlockPool::bounded(4, 2, OvercommitPolicy::Strict).unwrap();
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert!(matches!(
            pool.alloc(),
            Err(CoreError::PoolExhausted {
                in_use: 2,
                capacity: 2
            })
        ));
        assert!(!pool.can_allocate(1));
        pool.release(a).unwrap();
        assert!(pool.can_allocate(1));
        assert!(pool.alloc().is_ok());
    }

    #[test]
    fn transient_pools_overshoot_and_record_it() {
        let mut pool = BlockPool::bounded(4, 1, OvercommitPolicy::AllowTransient).unwrap();
        let _a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!(pool.blocks_in_use(), 2);
        assert_eq!(pool.blocks_free(), 0);
        assert_eq!(pool.stats().peak_overshoot(), 1);
        pool.release(b).unwrap();
        assert_eq!(pool.stats().peak_overshoot(), 1, "high-water is sticky");
    }

    #[test]
    fn fork_block_probes_and_forks_atomically() {
        let mut pool = BlockPool::unbounded(8);
        let a = pool.alloc().unwrap();
        // Privately mapped: write in place, pool untouched.
        assert_eq!(pool.fork_block(a).unwrap(), None);
        assert_eq!(pool.blocks_in_use(), 1);
        // Shared: the writer gets a fresh block and drops its mapping of `a`.
        pool.retain(a).unwrap();
        let forked = pool.fork_block(a).unwrap().expect("shared block forks");
        assert_ne!(forked, a);
        assert_eq!(pool.refcount(a), 1, "other holder keeps the original");
        assert_eq!(pool.refcount(forked), 1);
        assert_eq!(pool.blocks_in_use(), 2);
        // Unknown / freed blocks are rejected without touching the pool.
        pool.release(a).unwrap();
        assert!(matches!(
            pool.fork_block(a),
            Err(CoreError::InvalidBlock { op: "fork", .. })
        ));
    }

    #[test]
    fn fork_block_respects_strict_capacity() {
        let mut pool = BlockPool::bounded(4, 2, OvercommitPolicy::Strict).unwrap();
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        pool.retain(a).unwrap();
        // No block left for the private copy: the fork fails and the shared
        // mapping is left exactly as it was.
        assert!(matches!(
            pool.fork_block(a),
            Err(CoreError::PoolExhausted { .. })
        ));
        assert_eq!(pool.refcount(a), 2);
        assert_eq!(pool.blocks_in_use(), 2);
    }

    #[test]
    fn refcounts_keep_shared_blocks_alive() {
        let mut pool = BlockPool::unbounded(8);
        let a = pool.alloc().unwrap();
        pool.retain(a).unwrap();
        assert_eq!(pool.refcount(a), 2);
        assert_eq!(pool.shared_blocks(), 1);
        assert_eq!(pool.stats().peak_shared_blocks, 1);
        pool.release(a).unwrap();
        assert_eq!(pool.blocks_in_use(), 1, "still mapped once");
        assert_eq!(pool.shared_blocks(), 0);
        pool.release(a).unwrap();
        assert_eq!(pool.blocks_in_use(), 0);
        assert_eq!(pool.refcount(a), 0);
        assert_eq!(pool.stats().peak_shared_blocks, 1, "high-water is sticky");
    }

    #[test]
    fn bad_ids_are_errors_not_panics() {
        let mut pool = BlockPool::unbounded(8);
        let a = pool.alloc().unwrap();
        pool.release(a).unwrap();
        // Double free.
        assert_eq!(
            pool.release(a),
            Err(CoreError::InvalidBlock {
                id: a.raw(),
                op: "release"
            })
        );
        // Retain of a freed block.
        assert!(matches!(
            pool.retain(a),
            Err(CoreError::InvalidBlock { op: "retain", .. })
        ));
        // Never-issued id.
        assert!(pool.release(BlockId(99)).is_err());
        // The failed operations left the pool consistent.
        assert_eq!(pool.blocks_in_use(), 0);
        assert_eq!(pool.stats().total_frees, 1);
    }

    #[test]
    fn reservations_gate_on_capacity_not_usage() {
        let mut pool = BlockPool::bounded(8, 10, OvercommitPolicy::AllowTransient).unwrap();
        assert!(pool.try_reserve(6));
        assert!(pool.try_reserve(4));
        assert!(!pool.try_reserve(1), "reservations are capped at capacity");
        pool.unreserve(4);
        assert!(pool.try_reserve(3));
        assert_eq!(pool.blocks_reserved(), 9);
        assert_eq!(pool.stats().peak_reserved, 10);
        // Unbounded pools accept any reservation.
        let mut open = BlockPool::unbounded(8);
        assert!(open.try_reserve(usize::MAX / 2));
    }

    #[test]
    fn transient_preflight_protects_other_reservations() {
        let mut pool = BlockPool::bounded(4, 10, OvercommitPolicy::Strict).unwrap();
        // A decoder reserves 4 blocks but currently holds 2 of them.
        assert!(pool.try_reserve(4));
        let decoder: Vec<_> = (0..2).map(|_| pool.alloc().unwrap()).collect();
        // A prefiller with a 3-block reservation holds 3 and wants to grow.
        assert!(pool.try_reserve(3));
        let prefiller: Vec<_> = (0..3).map(|_| pool.alloc().unwrap()).collect();
        // Raw capacity has 5 blocks free, but 2 are owed to the decoder: only 3
        // transient blocks are actually safe.
        assert!(pool.can_allocate(5));
        assert!(pool.can_allocate_transient(3, 3, 3));
        assert!(!pool.can_allocate_transient(4, 3, 3));
        // Within its own reservation a session is never blocked by what others
        // are owed.
        assert!(pool.can_allocate_transient(2, 2, 4));
        // AllowTransient and unbounded pools never gate.
        let open = BlockPool::unbounded(4);
        assert!(open.can_allocate_transient(usize::MAX / 2, 0, 0));
        // The batched headroom query agrees exactly with the per-need check:
        // it reports the largest `needed` the check would still admit.
        let headroom = pool.max_transient_blocks(3, 3);
        assert_eq!(headroom, 3);
        assert!(pool.can_allocate_transient(headroom, 3, 3));
        assert!(!pool.can_allocate_transient(headroom + 1, 3, 3));
        assert_eq!(open.max_transient_blocks(0, 0), usize::MAX);
        for id in decoder.into_iter().chain(prefiller) {
            pool.release(id).unwrap();
        }
    }

    #[test]
    fn shared_handle_round_trips() {
        let pool = SharedBlockPool::bounded(8, 4, OvercommitPolicy::Strict).unwrap();
        let clone = pool.clone();
        let a = pool.alloc().unwrap();
        assert_eq!(clone.blocks_in_use(), 1);
        assert!(clone.try_reserve(2));
        assert_eq!(pool.blocks_reserved(), 2);
        clone.release(a).unwrap();
        assert_eq!(pool.blocks_in_use(), 0);
        assert_eq!(pool.block_size(), 8);
        assert_eq!(pool.capacity_blocks(), Some(4));
        assert!(pool.same_pool(&clone));
        assert!(!pool.same_pool(&SharedBlockPool::unbounded(8)));
    }

    #[test]
    fn blocks_for_slots_rounds_up() {
        assert_eq!(blocks_for_slots(0, 8), 0);
        assert_eq!(blocks_for_slots(1, 8), 1);
        assert_eq!(blocks_for_slots(8, 8), 1);
        assert_eq!(blocks_for_slots(9, 8), 2);
    }

    /// Compile-time thread-safety audit for the parallel serving layer: the
    /// shared pool handle must be `Send + Sync` (workers allocate through it
    /// concurrently) and the plain pool `Send` (it moves into the mutex).
    #[test]
    fn pool_handles_are_thread_safe() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send::<BlockPool>();
        assert_send_sync::<SharedBlockPool>();
        assert_send_sync::<BlockPoolStats>();
    }
}

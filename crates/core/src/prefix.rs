//! Prefix sharing: a registry mapping token prefixes to the physical KV blocks
//! that already hold them, so sequences with a common prompt prefix (system
//! prompts, few-shot templates) attach to cached blocks instead of recomputing
//! and re-storing them.
//!
//! ## Design
//!
//! The registry is keyed the way vLLM-style prefix caches are: one entry per
//! *full block* of prompt tokens, addressed by a chained hash
//! `key(b) = h(key(b-1), tokens-of-block-b)` seeded with a caller-supplied
//! *context* (in the serving layer, a digest of the effective policy spec — see
//! [`policy_context`]). Looking up a prompt walks the chain block by block and
//! stops at the first miss, which yields the longest registered prefix at block
//! granularity, with the stored tokens verified at every link so hash
//! collisions degrade to misses.
//!
//! Each entry pins, per decoder layer, one `SharedKvBlock` — a pool-retained,
//! `Arc`-shared handle to the physical block — **and a snapshot of the eviction
//! policy's state** taken at that block boundary. The snapshot is what makes
//! attachment *token-identical* to a cold start: score-accumulating policies
//! (H2O, Keyformer, damped) fold every prompt token's attention into per-slot
//! state, so skipping the forwards without restoring that state would change
//! the end-of-prompt eviction and therefore the generated tokens.
//!
//! Attachment maps the matched blocks into an empty [`KvCache`] copy-on-write
//! (see [`crate::cache`]): readers never copy; the first *write* into a shared
//! block — an eviction-driven compaction, or an append into it — forks a
//! private copy, so the registry's bytes are immutable for as long as any entry
//! pins them.
//!
//! Entries are evicted least-recently-used ([`PrefixRegistry::evict_lru`],
//! [`PrefixRegistry::clear`]) under pool pressure. Evicting an entry releases
//! only the *registry's* retain: sequences currently attached hold their own
//! refcounts and keep decoding unaffected. Evicting a mid-chain entry strands
//! its descendants (they become unreachable to lookups); they stop being
//! touched and age out through the same LRU path.

use crate::block::SharedBlockPool;
use crate::cache::{KvCache, SharedKvBlock};
use crate::policy::KvCachePolicy;
use crate::spec::PolicySpec;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// FNV-1a over arbitrary bytes; the registry's collision-checked hash primitive.
fn fnv1a(seed: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Chained key of one prefix block given its parent's key (or the context seed
/// for block 0) and the tokens the block holds.
fn block_key(parent: u64, tokens: &[u32]) -> u64 {
    fnv1a(parent, tokens.iter().flat_map(|t| t.to_le_bytes()))
}

/// Derives the prefix-chain context seed for a policy spec. Sequences only
/// share prefixes registered under the *same* policy configuration, because a
/// registry entry's policy snapshot is only a valid resume point for an
/// identical policy state machine (same score function, same noise seed).
pub fn policy_context(spec: &PolicySpec) -> u64 {
    fnv1a(0, format!("{spec:?}").bytes())
}

/// Counters of one registry's lifetime, surfaced in the serving layer's
/// `StepReport` and the `prefix_sharing` experiment JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PrefixRegistryStats {
    /// Entries (full blocks of one layer-set) currently registered.
    pub entries: usize,
    /// Physical blocks currently pinned by the registry (entries × layers).
    pub blocks_held: usize,
    /// Lookups that attached at least one block.
    pub hits: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Prompt tokens skipped via attachment, summed over hits.
    pub attached_tokens: u64,
    /// Entries inserted over the registry's lifetime.
    pub registered: u64,
    /// Entries evicted (LRU or clear) over the registry's lifetime.
    pub evictions: u64,
}

/// A successful attachment: how much prompt was reused and the policy snapshot
/// to resume from.
pub struct AttachedPrefix {
    /// Prompt tokens now served from shared blocks (a multiple of the block
    /// size); the prefill should resume at this offset.
    pub tokens: usize,
    /// The eviction-policy state a cold start would have after forwarding
    /// exactly `tokens` prompt tokens. The attaching session must replace its
    /// fresh policy instance with this snapshot.
    pub policy: Box<dyn KvCachePolicy>,
}

impl std::fmt::Debug for AttachedPrefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttachedPrefix")
            .field("tokens", &self.tokens)
            .field("policy", &self.policy.name())
            .finish()
    }
}

/// One registered full block: its chain identity, pinned physical blocks (one
/// per layer) and the policy snapshot at this boundary.
struct Entry {
    /// Tokens of *this* block (length = block size), for collision checking.
    block_tokens: Vec<u32>,
    /// One pinned physical block per decoder layer.
    per_layer: Vec<SharedKvBlock>,
    /// Policy state after forwarding the whole prefix up to and including this
    /// block.
    policy: Box<dyn KvCachePolicy>,
    /// Logical timestamp of the last lookup or registration touch (LRU order).
    last_used: u64,
}

/// The prefix registry; see the [module docs](self). Usually handled through
/// the cloneable, lockable [`SharedPrefixRegistry`].
pub struct PrefixRegistry {
    pool: SharedBlockPool,
    block_size: usize,
    /// On a strict pool the registry's pins must be visible to admission
    /// arithmetic, or pinned blocks would silently eat capacity the pool's
    /// no-overshoot guarantee promised to sessions' reservations: each entry
    /// then holds a pool reservation alongside its retains, and registration
    /// is skipped (`Ok(false)`) when no reservable capacity is spare.
    reserve_pins: bool,
    /// Cap on the registry's pinned blocks. Without one, a registry over a
    /// bounded pool would grow without bound: every retired request's
    /// never-shared *suffix* blocks would stay pinned forever. At the cap,
    /// registration evicts least-recently-used entries first — attaches stamp
    /// chain roots freshest, so hot shared prefixes survive the churn and cold
    /// suffixes age out. Defaults to half the pool's capacity (`None`, i.e.
    /// unlimited, over unbounded pools).
    max_blocks: Option<usize>,
    entries: HashMap<u64, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    attached_tokens: u64,
    registered: u64,
    evictions: u64,
}

impl std::fmt::Debug for PrefixRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixRegistry")
            .field("block_size", &self.block_size)
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl PrefixRegistry {
    /// Creates an empty registry over `pool`. Only caches drawing from this
    /// pool can register into or attach from it.
    pub fn new(pool: &SharedBlockPool) -> Self {
        PrefixRegistry {
            block_size: pool.block_size(),
            reserve_pins: pool.overcommit() == crate::block::OvercommitPolicy::Strict,
            max_blocks: pool.capacity_blocks().map(|c| (c / 2).max(1)),
            pool: pool.clone(),
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            attached_tokens: 0,
            registered: 0,
            evictions: 0,
        }
    }

    /// Token slots per registered block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The cap on pinned blocks (`None` = unlimited); see
    /// [`PrefixRegistry::set_max_blocks`].
    pub fn max_blocks(&self) -> Option<usize> {
        self.max_blocks
    }

    /// Replaces the pinned-block cap. Registration evicts least-recently-used
    /// entries to stay under it; an over-full registry shrinks lazily at the
    /// next registration.
    pub fn set_max_blocks(&mut self, max_blocks: Option<usize>) {
        self.max_blocks = max_blocks;
    }

    /// Registered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Physical blocks currently pinned by the registry.
    pub fn blocks_held(&self) -> usize {
        self.entries.values().map(|e| e.per_layer.len()).sum()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PrefixRegistryStats {
        PrefixRegistryStats {
            entries: self.entries.len(),
            blocks_held: self.blocks_held(),
            hits: self.hits,
            misses: self.misses,
            attached_tokens: self.attached_tokens,
            registered: self.registered,
            evictions: self.evictions,
        }
    }

    /// Keys of the longest registered chain matching `tokens`, walked block by
    /// block with the stored tokens verified at each link.
    fn walk(&self, context: u64, tokens: &[u32]) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut parent = context;
        for chunk in tokens.chunks_exact(self.block_size) {
            let key = block_key(parent, chunk);
            match self.entries.get(&key) {
                Some(e) if e.block_tokens == chunk => {
                    keys.push(key);
                    parent = key;
                }
                _ => break,
            }
        }
        keys
    }

    /// Longest registered prefix of `tokens` under `context`, in tokens
    /// (always a multiple of the block size). Read-only: does not touch LRU
    /// order or hit counters — the serving layer uses it to price admission
    /// before actually attaching.
    pub fn match_tokens(&self, context: u64, tokens: &[u32]) -> usize {
        self.walk(context, tokens).len() * self.block_size
    }

    /// Attaches the longest registered prefix of `prefix` into the empty
    /// `cache`, mapping the matched blocks into every layer copy-on-write.
    /// Returns `None` (counting a miss) when nothing matches. On a match the
    /// caller must resume its prefill at [`AttachedPrefix::tokens`] and adopt
    /// [`AttachedPrefix::policy`].
    ///
    /// Pass a `prefix` already truncated to the tokens the caller is willing
    /// to reuse (at least the final prompt token must stay un-attached so the
    /// prefill produces next-token logits).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `cache` is not empty, draws
    /// from a different pool, or its layer count differs from the registered
    /// entries, and [`CoreError::InvalidBlock`] if the registry's pins are out
    /// of sync with the pool (a bookkeeping bug).
    pub fn attach(
        &mut self,
        context: u64,
        prefix: &[u32],
        cache: &mut KvCache,
    ) -> Result<Option<AttachedPrefix>, CoreError> {
        if !cache.pool().same_pool(&self.pool) {
            return Err(CoreError::InvalidConfig(
                "cache draws from a different pool than the prefix registry".into(),
            ));
        }
        if cache.total_slots() != 0 {
            return Err(CoreError::InvalidConfig(
                "prefix attachment requires an empty cache".into(),
            ));
        }
        let keys = self.walk(context, prefix);
        let Some(&deepest) = keys.last() else {
            self.misses += 1;
            return Ok(None);
        };
        // Collect the handles first so the entry borrows end before the cache
        // is mutated.
        let mut per_depth: Vec<Vec<SharedKvBlock>> = Vec::with_capacity(keys.len());
        for key in &keys {
            let entry = &self.entries[key];
            if entry.per_layer.len() != cache.num_layers() {
                return Err(CoreError::InvalidConfig(format!(
                    "registered prefix spans {} layers, cache has {}",
                    entry.per_layer.len(),
                    cache.num_layers()
                )));
            }
            per_depth.push(entry.per_layer.clone());
        }
        for layer_idx in 0..cache.num_layers() {
            let layer = cache.layer_mut(layer_idx);
            for depth in &per_depth {
                layer.push_shared_block(depth[layer_idx].clone())?;
            }
        }
        let tokens = keys.len() * self.block_size;
        // Roots get the freshest stamps: evicting a root strands every
        // descendant, so LRU pressure should peel chains leaf-first and keep
        // the widely-shared roots matchable.
        for key in keys.iter().rev() {
            self.clock += 1;
            if let Some(e) = self.entries.get_mut(key) {
                e.last_used = self.clock;
            }
        }
        self.hits += 1;
        self.attached_tokens += tokens as u64;
        let policy = self.entries[&deepest].policy.clone_box();
        Ok(Some(AttachedPrefix { tokens, policy }))
    }

    /// Registers the deepest full block of `prefix` (whose length must be a
    /// positive multiple of the block size) from `cache`, pinning one physical
    /// block per layer and snapshotting `policy` at this boundary. The parent
    /// chain must already be registered — sessions call this at every block
    /// boundary during prompt forwarding, so the chain grows in order; if an
    /// ancestor was evicted in between, the registration is skipped
    /// (`Ok(false)`). Re-registering an existing block only refreshes its LRU
    /// stamp.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `prefix` is not a positive
    /// multiple of the block size, the cache draws from another pool, or the
    /// cache does not (yet) hold the whole prefix undisturbed in every layer.
    pub fn register(
        &mut self,
        context: u64,
        prefix: &[u32],
        cache: &KvCache,
        policy: &dyn KvCachePolicy,
    ) -> Result<bool, CoreError> {
        let bs = self.block_size;
        if prefix.is_empty() || prefix.len() % bs != 0 {
            return Err(CoreError::InvalidConfig(format!(
                "prefix of {} tokens is not a positive multiple of the {bs}-slot block size",
                prefix.len()
            )));
        }
        if !cache.pool().same_pool(&self.pool) {
            return Err(CoreError::InvalidConfig(
                "cache draws from a different pool than the prefix registry".into(),
            ));
        }
        let depth = prefix.len() / bs - 1;
        for layer in cache.iter() {
            if layer.len() < prefix.len() {
                return Err(CoreError::InvalidConfig(format!(
                    "cache layer holds {} slots, prefix needs {}",
                    layer.len(),
                    prefix.len()
                )));
            }
        }
        // Prompt-order positions 0..P are what an attacher will inherit; a
        // cache that already evicted or re-ordered cannot donate.
        let positions = cache.layer(0).positions();
        if positions[..prefix.len()]
            .iter()
            .enumerate()
            .any(|(i, &p)| p != i)
        {
            return Err(CoreError::InvalidConfig(
                "cache no longer holds the prefix at its original positions".into(),
            ));
        }
        let parents = self.walk(context, &prefix[..depth * bs]);
        if parents.len() != depth {
            // An ancestor is missing (evicted, or never registered): the chain
            // cannot be extended here.
            return Ok(false);
        }
        let parent_key = parents.last().copied().unwrap_or(context);
        let block_tokens = &prefix[depth * bs..];
        let key = block_key(parent_key, block_tokens);
        if let Some(existing) = self.entries.get_mut(&key) {
            if existing.block_tokens == block_tokens {
                self.clock += 1;
                existing.last_used = self.clock;
            }
            // A hash collision with different tokens degrades to "not
            // registered"; the existing entry keeps its identity.
            return Ok(false);
        }
        let mut per_layer = Vec::with_capacity(cache.num_layers());
        for layer in cache.iter() {
            let block = layer.shared_block(depth);
            if block.rows() != bs {
                return Err(CoreError::InvalidConfig(
                    "only full blocks can be registered".into(),
                ));
            }
            per_layer.push(block);
        }
        if let Some(cap) = self.max_blocks {
            if per_layer.len() > cap {
                return Ok(false);
            }
            // Stay under the pin cap by aging out least-recently-used entries
            // (chain roots carry the freshest stamps, so hot prefixes survive).
            // The new entry's own ancestors are exempt: evicting one would
            // insert the entry under a dead chain — unreachable to every
            // lookup yet still pinning blocks.
            while self.blocks_held() + per_layer.len() > cap {
                if !self.evict_lru_excluding(&parents) {
                    return Ok(false);
                }
            }
        }
        if self.reserve_pins && !self.pool.try_reserve(per_layer.len()) {
            // A strict pool with no spare reservable capacity: caching would
            // eat blocks sessions were promised. Skip, not an error.
            return Ok(false);
        }
        for (i, block) in per_layer.iter().enumerate() {
            if let Err(e) = self.pool.retain(block.id) {
                // Roll back the pins taken so far; the registry stays
                // consistent and the caller sees the error.
                for earlier in &per_layer[..i] {
                    let _ = self.pool.release(earlier.id);
                }
                if self.reserve_pins {
                    self.pool.unreserve(per_layer.len());
                }
                return Err(e);
            }
        }
        self.clock += 1;
        self.entries.insert(
            key,
            Entry {
                block_tokens: block_tokens.to_vec(),
                per_layer,
                policy: policy.clone_box(),
                last_used: self.clock,
            },
        );
        self.registered += 1;
        Ok(true)
    }

    fn release_entry(&mut self, key: u64) {
        if let Some(entry) = self.entries.remove(&key) {
            for block in &entry.per_layer {
                let released = self.pool.release(block.id);
                debug_assert!(released.is_ok(), "registry pinned an unknown block");
            }
            if self.reserve_pins {
                self.pool.unreserve(entry.per_layer.len());
            }
            self.evictions += 1;
        }
    }

    /// Evicts the least-recently-used entry, releasing its pins (blocks whose
    /// refcount drops to zero become allocatable immediately; blocks still
    /// mapped by attached sequences stay alive for them). Returns `false` when
    /// the registry is empty.
    pub fn evict_lru(&mut self) -> bool {
        self.evict_lru_excluding(&[])
    }

    /// [`PrefixRegistry::evict_lru`] skipping the `protected` keys; `false`
    /// when nothing evictable remains.
    fn evict_lru_excluding(&mut self, protected: &[u64]) -> bool {
        let Some((&key, _)) = self
            .entries
            .iter()
            .filter(|(k, _)| !protected.contains(k))
            .min_by_key(|(_, e)| e.last_used)
        else {
            return false;
        };
        self.release_entry(key);
        true
    }

    /// Ids of every block the registry currently pins (each id once per entry
    /// layer; ids are unique across entries because every pinned block is a
    /// distinct physical block).
    pub fn pinned_block_ids(&self) -> Vec<crate::block::BlockId> {
        self.entries
            .values()
            .flat_map(|e| e.per_layer.iter().map(|b| b.id))
            .collect()
    }

    /// Evicts every entry. Attached sequences are unaffected (they hold their
    /// own refcounts); only the registry's pins are released.
    pub fn clear(&mut self) {
        let keys: Vec<u64> = self.entries.keys().copied().collect();
        for key in keys {
            self.release_entry(key);
        }
    }
}

impl Drop for PrefixRegistry {
    fn drop(&mut self) {
        self.clear();
    }
}

/// A cloneable, `Send + Sync` handle to a [`PrefixRegistry`], shared between
/// the serving scheduler and every session registering into or attaching from
/// it — mirroring [`SharedBlockPool`].
#[derive(Debug, Clone)]
pub struct SharedPrefixRegistry {
    inner: Arc<Mutex<PrefixRegistry>>,
}

impl SharedPrefixRegistry {
    /// Creates an empty shared registry over `pool`.
    pub fn new(pool: &SharedBlockPool) -> Self {
        SharedPrefixRegistry {
            inner: Arc::new(Mutex::new(PrefixRegistry::new(pool))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PrefixRegistry> {
        self.inner.lock().expect("prefix registry lock poisoned")
    }

    /// See [`PrefixRegistry::block_size`].
    pub fn block_size(&self) -> usize {
        self.lock().block_size()
    }

    /// See [`PrefixRegistry::len`].
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// See [`PrefixRegistry::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// See [`PrefixRegistry::blocks_held`].
    pub fn blocks_held(&self) -> usize {
        self.lock().blocks_held()
    }

    /// See [`PrefixRegistry::max_blocks`].
    pub fn max_blocks(&self) -> Option<usize> {
        self.lock().max_blocks()
    }

    /// See [`PrefixRegistry::set_max_blocks`].
    pub fn set_max_blocks(&self, max_blocks: Option<usize>) {
        self.lock().set_max_blocks(max_blocks);
    }

    /// See [`PrefixRegistry::stats`].
    pub fn stats(&self) -> PrefixRegistryStats {
        self.lock().stats()
    }

    /// See [`PrefixRegistry::match_tokens`].
    pub fn match_tokens(&self, context: u64, tokens: &[u32]) -> usize {
        self.lock().match_tokens(context, tokens)
    }

    /// See [`PrefixRegistry::attach`].
    ///
    /// # Errors
    ///
    /// See [`PrefixRegistry::attach`].
    pub fn attach(
        &self,
        context: u64,
        prefix: &[u32],
        cache: &mut KvCache,
    ) -> Result<Option<AttachedPrefix>, CoreError> {
        self.lock().attach(context, prefix, cache)
    }

    /// See [`PrefixRegistry::register`].
    ///
    /// # Errors
    ///
    /// See [`PrefixRegistry::register`].
    pub fn register(
        &self,
        context: u64,
        prefix: &[u32],
        cache: &KvCache,
        policy: &dyn KvCachePolicy,
    ) -> Result<bool, CoreError> {
        self.lock().register(context, prefix, cache, policy)
    }

    /// See [`PrefixRegistry::evict_lru`].
    pub fn evict_lru(&self) -> bool {
        self.lock().evict_lru()
    }

    /// See [`PrefixRegistry::pinned_block_ids`].
    pub fn pinned_block_ids(&self) -> Vec<crate::block::BlockId> {
        self.lock().pinned_block_ids()
    }

    /// See [`PrefixRegistry::clear`].
    pub fn clear(&self) {
        self.lock().clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::OvercommitPolicy;
    use crate::policies::full::FullAttention;

    const LAYERS: usize = 2;
    const HEADS: usize = 2;
    const DIM: usize = 3;
    const BS: usize = 4;

    fn fill(cache: &mut KvCache, tokens: &[u32]) {
        for l in 0..cache.num_layers() {
            for (pos, &tok) in tokens.iter().enumerate() {
                let k = vec![vec![tok as f32 + l as f32 * 100.0; DIM]; HEADS];
                let v = vec![vec![tok as f32 + 0.5; DIM]; HEADS];
                cache.layer_mut(l).append(pos, &k, &v).unwrap();
            }
        }
    }

    fn tokens(n: usize, salt: u32) -> Vec<u32> {
        (0..n).map(|i| (i as u32 * 7 + 1 + salt) % 100).collect()
    }

    #[test]
    fn register_then_attach_longest_prefix() {
        let pool = SharedBlockPool::unbounded(BS);
        let registry = PrefixRegistry::new(&pool);
        let mut registry = registry;
        let mut donor = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        let prompt = tokens(12, 0);
        fill(&mut donor, &prompt);
        let policy = FullAttention::new();
        for blocks in 1..=3 {
            assert!(registry
                .register(7, &prompt[..blocks * BS], &donor, &policy)
                .unwrap());
        }
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.blocks_held(), 3 * LAYERS);
        // A prompt sharing only the first 8 tokens matches 2 blocks.
        let mut other = prompt[..8].to_vec();
        other.extend(tokens(8, 50));
        assert_eq!(registry.match_tokens(7, &other), 8);
        // A different context matches nothing.
        assert_eq!(registry.match_tokens(8, &other), 0);
        let mut reader = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        let attached = registry.attach(7, &other, &mut reader).unwrap().unwrap();
        assert_eq!(attached.tokens, 8);
        assert_eq!(reader.total_slots(), 8 * LAYERS);
        assert_eq!(
            reader.layer(1).keys(0).row(5),
            donor.layer(1).keys(0).row(5)
        );
        // No new physical blocks were allocated for the attachment.
        assert_eq!(pool.blocks_in_use(), 3 * LAYERS);
        let stats = registry.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.attached_tokens, 8);
    }

    #[test]
    fn attach_misses_on_unknown_prompts_and_requires_empty_cache() {
        let pool = SharedBlockPool::unbounded(BS);
        let mut registry = PrefixRegistry::new(&pool);
        let mut cache = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        assert!(registry
            .attach(1, &tokens(8, 3), &mut cache)
            .unwrap()
            .is_none());
        assert_eq!(registry.stats().misses, 1);
        fill(&mut cache, &tokens(4, 0));
        let err = registry.attach(1, &tokens(8, 3), &mut cache);
        assert!(err.is_err(), "non-empty cache must be rejected");
        // Foreign-pool caches are rejected for both register and attach.
        let mut foreign = KvCache::new(LAYERS, HEADS, DIM);
        assert!(registry.attach(1, &tokens(8, 3), &mut foreign).is_err());
        assert!(registry
            .register(1, &tokens(4, 0), &foreign, &FullAttention::new())
            .is_err());
    }

    #[test]
    fn register_contract_violations_are_errors_or_skips() {
        let pool = SharedBlockPool::unbounded(BS);
        let mut registry = PrefixRegistry::new(&pool);
        let mut donor = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        let prompt = tokens(12, 0);
        fill(&mut donor, &prompt);
        let policy = FullAttention::new();
        // Not a block multiple.
        assert!(registry.register(1, &prompt[..5], &donor, &policy).is_err());
        // Broken parent chain: registering depth 2 before depth 1 is skipped.
        assert!(!registry.register(1, &prompt[..8], &donor, &policy).unwrap());
        assert!(registry.register(1, &prompt[..4], &donor, &policy).unwrap());
        assert!(registry.register(1, &prompt[..8], &donor, &policy).unwrap());
        // Re-registration is a refresh, not a double pin.
        let held = registry.blocks_held();
        assert!(!registry.register(1, &prompt[..8], &donor, &policy).unwrap());
        assert_eq!(registry.blocks_held(), held);
    }

    #[test]
    fn eviction_releases_pins_but_not_attached_readers() {
        let pool = SharedBlockPool::bounded(BS, 64, OvercommitPolicy::AllowTransient).unwrap();
        let mut registry = PrefixRegistry::new(&pool);
        let prompt = tokens(8, 0);
        let mut donor = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        fill(&mut donor, &prompt);
        let policy = FullAttention::new();
        registry.register(1, &prompt[..4], &donor, &policy).unwrap();
        registry.register(1, &prompt[..8], &donor, &policy).unwrap();
        let mut reader = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        let attached = registry.attach(1, &prompt, &mut reader).unwrap().unwrap();
        assert_eq!(attached.tokens, 8);
        drop(donor);
        // The donor is gone; registry + reader keep all 4 physical blocks.
        assert_eq!(pool.blocks_in_use(), 2 * LAYERS);
        registry.clear();
        assert_eq!(registry.len(), 0);
        assert_eq!(registry.stats().evictions, 2);
        // The reader still reads valid data from its own pins.
        assert_eq!(reader.total_slots(), 8 * LAYERS);
        assert_eq!(reader.layer(0).keys(0).row(7).len(), DIM);
        assert_eq!(pool.blocks_in_use(), 2 * LAYERS);
        drop(reader);
        assert_eq!(pool.blocks_in_use(), 0, "all pins released");
    }

    #[test]
    fn lru_eviction_order_and_stranded_descendants() {
        let pool = SharedBlockPool::unbounded(BS);
        let mut registry = PrefixRegistry::new(&pool);
        let prompt = tokens(8, 0);
        let mut donor = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        fill(&mut donor, &prompt);
        let policy = FullAttention::new();
        registry.register(1, &prompt[..4], &donor, &policy).unwrap();
        registry.register(1, &prompt[..8], &donor, &policy).unwrap();
        // An attach stamps roots freshest, so LRU pressure peels the chain
        // leaf-first and the root stays matchable.
        let mut reader = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        registry.attach(1, &prompt, &mut reader).unwrap().unwrap();
        assert!(registry.evict_lru());
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.match_tokens(1, &prompt), 4, "root survives");
        assert!(registry.evict_lru());
        assert!(!registry.evict_lru(), "registry is empty");
    }

    #[test]
    fn pin_cap_churns_lru_but_keeps_hot_roots() {
        let pool = SharedBlockPool::bounded(BS, 64, OvercommitPolicy::AllowTransient).unwrap();
        let mut registry = PrefixRegistry::new(&pool);
        assert_eq!(registry.max_blocks(), Some(32), "defaults to half the pool");
        // Room for exactly two entries of LAYERS blocks each.
        registry.set_max_blocks(Some(2 * LAYERS));
        let prompt_a = tokens(8, 0);
        let mut donor_a = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        fill(&mut donor_a, &prompt_a);
        let policy = FullAttention::new();
        registry
            .register(1, &prompt_a[..4], &donor_a, &policy)
            .unwrap();
        registry
            .register(1, &prompt_a[..8], &donor_a, &policy)
            .unwrap();
        assert_eq!(registry.blocks_held(), 2 * LAYERS);
        // An attach stamps A's root freshest, leaving A's leaf as the LRU.
        let mut reader = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        registry.attach(1, &prompt_a, &mut reader).unwrap();
        // A different tenant registers: the cap evicts A's *leaf*, not its
        // hot root.
        let prompt_b = tokens(4, 9);
        let mut donor_b = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        fill(&mut donor_b, &prompt_b);
        assert!(registry.register(2, &prompt_b, &donor_b, &policy).unwrap());
        assert_eq!(registry.blocks_held(), 2 * LAYERS, "cap respected");
        assert_eq!(registry.match_tokens(1, &prompt_a), 4, "hot root survives");
        assert_eq!(registry.match_tokens(2, &prompt_b), 4);
        // An entry bigger than the whole cap is skipped outright.
        registry.set_max_blocks(Some(1));
        let longer = tokens(12, 0);
        let mut donor_c = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        fill(&mut donor_c, &longer);
        assert!(!registry
            .register(3, &longer[..4], &donor_c, &policy)
            .unwrap());
    }

    #[test]
    fn shared_handle_round_trips_and_policy_context_discriminates() {
        let pool = SharedBlockPool::unbounded(BS);
        let registry = SharedPrefixRegistry::new(&pool);
        let clone = registry.clone();
        let mut donor = KvCache::with_pool(LAYERS, HEADS, DIM, pool.clone());
        let prompt = tokens(4, 0);
        fill(&mut donor, &prompt);
        registry
            .register(9, &prompt, &donor, &FullAttention::new())
            .unwrap();
        assert_eq!(clone.len(), 1);
        assert_eq!(clone.match_tokens(9, &prompt), 4);
        assert!(!clone.is_empty());
        assert_eq!(clone.block_size(), BS);
        clone.clear();
        assert!(registry.is_empty());

        let a = policy_context(&PolicySpec::Full);
        let b = policy_context(&PolicySpec::keyformer_default());
        let c = policy_context(&PolicySpec::Keyformer {
            adjustment: crate::adjustment::LogitAdjustment::Gumbel,
            temperature: crate::temperature::TemperatureSchedule::default(),
            scope: crate::accumulator::ScoreScope::PerLayer,
            seed: 1,
        });
        assert_ne!(a, b);
        assert_ne!(b, c, "the seed must participate in the context");
        assert_eq!(b, policy_context(&PolicySpec::keyformer_default()));
    }

    /// Compile-time thread-safety audit for the parallel serving layer: the
    /// registry handle crosses threads (sessions carry a clone into decode
    /// workers), so it — and the entries' boxed policy snapshots behind it —
    /// must be `Send`; `KvCachePolicy`'s `Send` supertrait is what makes
    /// this hold for every policy in the zoo.
    #[test]
    fn registry_handles_are_thread_safe() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send::<PrefixRegistry>();
        assert_send_sync::<SharedPrefixRegistry>();
        assert_send::<AttachedPrefix>();
    }
}

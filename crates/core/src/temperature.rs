//! Temperature schedules for the Keyformer score function.
//!
//! The paper anneals the Gumbel-softmax temperature `τ` linearly from `τ_init` (used
//! throughout the prompt phase, where nothing has been discarded yet) to `τ_end` over
//! the planned text-generation length `T` (Equation 10). Appendix A.8 shows the
//! dynamic schedule beats any static value; both variants are provided here.

use crate::observation::Phase;
use crate::CoreError;
use serde::{Deserialize, Serialize};

/// A temperature schedule mapping a decode step to the `τ` used by the score function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TemperatureSchedule {
    /// A constant temperature for every step (the Appendix A.8 baseline).
    Static(f32),
    /// The paper's linear schedule: `τ = τ_init + t * (τ_end - τ_init) / T` during
    /// generation, and `τ_init` during the prompt phase.
    Linear {
        /// Temperature during the prompt phase and at generation step 0.
        tau_init: f32,
        /// Temperature reached at the end of the planned generation length.
        tau_end: f32,
    },
}

impl Default for TemperatureSchedule {
    /// The paper's empirically best setting: `τ_init = 1`, `τ_end = 2`.
    fn default() -> Self {
        TemperatureSchedule::Linear {
            tau_init: 1.0,
            tau_end: 2.0,
        }
    }
}

impl TemperatureSchedule {
    /// Validates the schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any temperature is not strictly
    /// positive.
    pub fn validate(&self) -> Result<(), CoreError> {
        let ok = match *self {
            TemperatureSchedule::Static(tau) => tau > 0.0,
            TemperatureSchedule::Linear { tau_init, tau_end } => tau_init > 0.0 && tau_end > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::InvalidConfig(
                "temperatures must be strictly positive".into(),
            ))
        }
    }

    /// Temperature to use at decode step `step` of a generation of `total_steps`
    /// tokens, in the given `phase`.
    ///
    /// During the prompt phase the linear schedule always returns `tau_init` because
    /// no tokens have been discarded yet. With `total_steps == 0` the schedule
    /// degenerates to `tau_init`.
    pub fn tau(&self, phase: Phase, step: usize, total_steps: usize) -> f32 {
        match *self {
            TemperatureSchedule::Static(tau) => tau,
            TemperatureSchedule::Linear { tau_init, tau_end } => {
                if !phase.is_generation() || total_steps == 0 {
                    tau_init
                } else {
                    let delta = (tau_end - tau_init) / total_steps as f32;
                    let t = step.min(total_steps) as f32;
                    tau_init + t * delta
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schedule_is_constant() {
        let s = TemperatureSchedule::Static(1.5);
        assert_eq!(s.tau(Phase::Prompt, 0, 100), 1.5);
        assert_eq!(s.tau(Phase::Generation, 50, 100), 1.5);
        assert_eq!(s.tau(Phase::Generation, 100, 100), 1.5);
    }

    #[test]
    fn linear_schedule_anneals_during_generation() {
        let s = TemperatureSchedule::default();
        assert!((s.tau(Phase::Generation, 0, 100) - 1.0).abs() < 1e-6);
        assert!((s.tau(Phase::Generation, 50, 100) - 1.5).abs() < 1e-6);
        assert!((s.tau(Phase::Generation, 100, 100) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn linear_schedule_is_flat_during_prompt() {
        let s = TemperatureSchedule::default();
        assert!((s.tau(Phase::Prompt, 70, 100) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn linear_schedule_clamps_past_total_steps() {
        let s = TemperatureSchedule::default();
        assert!((s.tau(Phase::Generation, 500, 100) - 2.0).abs() < 1e-6);
        // Degenerate total_steps.
        assert!((s.tau(Phase::Generation, 3, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_non_positive_temperatures() {
        assert!(TemperatureSchedule::Static(0.0).validate().is_err());
        assert!(TemperatureSchedule::Linear {
            tau_init: 1.0,
            tau_end: -1.0
        }
        .validate()
        .is_err());
        assert!(TemperatureSchedule::default().validate().is_ok());
    }

    #[test]
    fn monotone_increase_across_steps() {
        let s = TemperatureSchedule::default();
        let mut prev = 0.0;
        for t in 0..=20 {
            let tau = s.tau(Phase::Generation, t, 20);
            assert!(tau >= prev);
            prev = tau;
        }
    }
}

//! Score-function accumulation across decode steps, heads and (optionally) layers.
//!
//! Both H2O and Keyformer identify key tokens from a score that is *accumulated* over
//! decoding steps (Section 3.3.2 of the paper). The accumulator also has to survive
//! cache compaction: when slots are evicted, the per-slot running totals must be
//! gathered down to the retained subset, exactly like the keys and values themselves.

use serde::{Deserialize, Serialize};

/// Whether scores are accumulated per decoder layer or shared across all layers
/// (the paper's Table 3 "Per-Layer" vs. "Shared" ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ScoreScope {
    /// A dedicated accumulator per decoder layer (the paper's best-performing choice).
    #[default]
    PerLayer,
    /// One global accumulator shared by every decoder layer.
    Shared,
}

impl std::fmt::Display for ScoreScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreScope::PerLayer => write!(f, "per-layer"),
            ScoreScope::Shared => write!(f, "shared"),
        }
    }
}

/// Running per-slot score totals, keyed by layer (or collapsed to a single bucket for
/// [`ScoreScope::Shared`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScoreAccumulator {
    scope: ScoreScope,
    buckets: Vec<Vec<f32>>,
}

impl ScoreAccumulator {
    /// Creates an empty accumulator with the given scope.
    pub fn new(scope: ScoreScope) -> Self {
        ScoreAccumulator {
            scope,
            buckets: Vec::new(),
        }
    }

    /// The accumulation scope.
    pub fn scope(&self) -> ScoreScope {
        self.scope
    }

    fn bucket_index(&self, layer: usize) -> usize {
        match self.scope {
            ScoreScope::PerLayer => layer,
            ScoreScope::Shared => 0,
        }
    }

    fn ensure_bucket(&mut self, layer: usize, len: usize) -> &mut Vec<f32> {
        let idx = self.bucket_index(layer);
        if self.buckets.len() <= idx {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        let bucket = &mut self.buckets[idx];
        if bucket.len() < len {
            bucket.resize(len, 0.0);
        }
        bucket
    }

    /// Adds `contribution[i]` to the running score of slot `i` in `layer`'s bucket.
    ///
    /// The bucket grows automatically if the cache has gained slots since the last
    /// call, so newly appended tokens start with a zero score.
    pub fn accumulate(&mut self, layer: usize, contribution: &[f32]) {
        let bucket = self.ensure_bucket(layer, contribution.len());
        for (total, &c) in bucket.iter_mut().zip(contribution) {
            *total += c;
        }
    }

    /// Current per-slot scores for `layer`, padded with zeros up to `live` slots.
    pub fn scores(&self, layer: usize, live: usize) -> Vec<f32> {
        let idx = self.bucket_index(layer);
        let mut out = vec![0.0; live];
        if let Some(bucket) = self.buckets.get(idx) {
            for (o, &s) in out.iter_mut().zip(bucket.iter()) {
                *o = s;
            }
        }
        out
    }

    /// Gathers the running totals of `layer`'s bucket down to the retained slots,
    /// mirroring a cache compaction.
    ///
    /// With [`ScoreScope::Shared`] every layer maps to the same bucket, so the caller
    /// must take care to compact the shared bucket exactly once per eviction decision
    /// (the Keyformer and H2O policies do this by only compacting on `layer == 0`
    /// when sharing).
    pub fn compact(&mut self, layer: usize, retained: &[usize]) {
        let idx = self.bucket_index(layer);
        if let Some(bucket) = self.buckets.get_mut(idx) {
            let gathered: Vec<f32> = retained
                .iter()
                .map(|&i| bucket.get(i).copied().unwrap_or(0.0))
                .collect();
            *bucket = gathered;
        }
    }

    /// Resets every bucket.
    pub fn reset(&mut self) {
        self.buckets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_layer_buckets_are_independent() {
        let mut acc = ScoreAccumulator::new(ScoreScope::PerLayer);
        acc.accumulate(0, &[1.0, 2.0]);
        acc.accumulate(1, &[10.0, 20.0]);
        assert_eq!(acc.scores(0, 2), vec![1.0, 2.0]);
        assert_eq!(acc.scores(1, 2), vec![10.0, 20.0]);
        assert_eq!(acc.scores(2, 2), vec![0.0, 0.0]);
    }

    #[test]
    fn shared_scope_sums_across_layers() {
        let mut acc = ScoreAccumulator::new(ScoreScope::Shared);
        acc.accumulate(0, &[1.0, 2.0]);
        acc.accumulate(5, &[1.0, 2.0]);
        assert_eq!(acc.scores(3, 2), vec![2.0, 4.0]);
    }

    #[test]
    fn accumulation_is_additive_over_steps() {
        let mut acc = ScoreAccumulator::new(ScoreScope::PerLayer);
        acc.accumulate(0, &[0.5, 0.5, 0.0]);
        acc.accumulate(0, &[0.25, 0.5, 0.25]);
        assert_eq!(acc.scores(0, 3), vec![0.75, 1.0, 0.25]);
    }

    #[test]
    fn new_slots_start_at_zero() {
        let mut acc = ScoreAccumulator::new(ScoreScope::PerLayer);
        acc.accumulate(0, &[1.0, 1.0]);
        // Cache grew by one slot before the next observation.
        acc.accumulate(0, &[0.0, 0.0, 2.0]);
        assert_eq!(acc.scores(0, 3), vec![1.0, 1.0, 2.0]);
    }

    #[test]
    fn compact_gathers_totals() {
        let mut acc = ScoreAccumulator::new(ScoreScope::PerLayer);
        acc.accumulate(0, &[1.0, 2.0, 3.0, 4.0]);
        acc.compact(0, &[0, 3]);
        assert_eq!(acc.scores(0, 2), vec![1.0, 4.0]);
        // Padding applies when asked for more live slots than stored.
        assert_eq!(acc.scores(0, 3), vec![1.0, 4.0, 0.0]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut acc = ScoreAccumulator::new(ScoreScope::Shared);
        acc.accumulate(0, &[1.0]);
        acc.reset();
        assert_eq!(acc.scores(0, 1), vec![0.0]);
    }

    #[test]
    fn scope_display() {
        assert_eq!(ScoreScope::PerLayer.to_string(), "per-layer");
        assert_eq!(ScoreScope::Shared.to_string(), "shared");
        assert_eq!(ScoreScope::default(), ScoreScope::PerLayer);
    }
}

//! Diagnostics reproducing the paper's analytical figures.
//!
//! * [`softmax_shift`] quantifies how evicting tokens redistributes probability mass
//!   over the survivors (Figure 4 and Equation 3).
//! * [`entropy_gain`] checks Equation 8: Gumbel logit adjustment increases the
//!   entropy of the post-softmax distribution, i.e. spreads the score function out.
//! * [`attention_mass_cdf`] produces the Figure 3b curve: cumulative attention mass
//!   captured by the top-x% of tokens.

use crate::adjustment::LogitAdjustment;
use keyformer_tensor::ops::{entropy, softmax};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The before/after attention distributions of a cache-reduction step (Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxShift {
    /// Softmax over the full logit vector (all `n` tokens).
    pub full: Vec<f32>,
    /// Softmax recomputed over only the retained logits, scattered back to the
    /// original slot order with zeros for evicted tokens.
    pub reduced: Vec<f32>,
    /// Probability mass the retained tokens carried under the *full* distribution.
    pub retained_mass: f32,
    /// Total variation distance between the two distributions restricted to the
    /// retained slots (how far the survivors' scores were distorted).
    pub total_variation: f32,
}

/// Computes the softmax-shift diagnostic for a set of logits and a retained-slot set.
///
/// # Panics
///
/// Panics if any retained index is out of bounds.
pub fn softmax_shift(logits: &[f32], retained: &[usize]) -> SoftmaxShift {
    let full = softmax(logits);
    let retained_logits: Vec<f32> = retained.iter().map(|&i| logits[i]).collect();
    let reduced_probs = softmax(&retained_logits);
    let mut reduced = vec![0.0; logits.len()];
    for (&slot, &p) in retained.iter().zip(&reduced_probs) {
        reduced[slot] = p;
    }
    let retained_mass: f32 = retained.iter().map(|&i| full[i]).sum();
    let total_variation: f32 = retained
        .iter()
        .map(|&i| (full[i] - reduced[i]).abs())
        .sum::<f32>()
        / 2.0;
    SoftmaxShift {
        full,
        reduced,
        retained_mass,
        total_variation,
    }
}

/// Result of the Equation 8 entropy experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntropyGain {
    /// Mean post-softmax entropy without logit adjustment.
    pub baseline: f32,
    /// Mean post-softmax entropy with the given adjustment applied.
    pub adjusted: f32,
}

impl EntropyGain {
    /// Entropy increase attributable to the adjustment.
    pub fn gain(&self) -> f32 {
        self.adjusted - self.baseline
    }
}

/// Estimates the expected post-softmax entropy with and without a logit adjustment,
/// averaging over `trials` independent noise draws (Equation 8: `H(E[z_Gumbel]) >
/// H(E[z])`).
pub fn entropy_gain(
    logits: &[f32],
    adjustment: LogitAdjustment,
    trials: usize,
    seed: u64,
) -> EntropyGain {
    let mut rng = StdRng::seed_from_u64(seed);
    let baseline = entropy(&softmax(logits));
    let mut mean_probs = vec![0.0f32; logits.len()];
    let trials = trials.max(1);
    for _ in 0..trials {
        let adjusted = adjustment.adjust(logits, &mut rng);
        for (m, p) in mean_probs.iter_mut().zip(softmax(&adjusted)) {
            *m += p / trials as f32;
        }
    }
    EntropyGain {
        baseline,
        adjusted: entropy(&mean_probs),
    }
}

/// One point of the Figure 3b curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Fraction of the context (top-x% of tokens by attention), in `(0, 1]`.
    pub token_fraction: f64,
    /// Cumulative attention mass captured by that fraction.
    pub attention_mass: f64,
}

/// Computes the cumulative attention-mass curve: sort tokens by descending attention
/// probability and report the mass captured by each requested fraction of tokens.
pub fn attention_mass_cdf(probs: &[f32], fractions: &[f64]) -> Vec<CdfPoint> {
    let mut sorted: Vec<f32> = probs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = sorted.iter().map(|&p| p as f64).sum();
    let mut prefix = Vec::with_capacity(sorted.len() + 1);
    prefix.push(0.0f64);
    for &p in &sorted {
        prefix.push(prefix.last().unwrap() + p as f64);
    }
    fractions
        .iter()
        .map(|&frac| {
            let count = ((frac * sorted.len() as f64).round() as usize).min(sorted.len());
            let mass = if total > 0.0 {
                prefix[count] / total
            } else {
                0.0
            };
            CdfPoint {
                token_fraction: frac,
                attention_mass: mass,
            }
        })
        .collect()
}

/// Fraction of attention probabilities at or below `threshold` times the maximum
/// probability — the per-layer "attention sparsity" metric of Figures 3a and 11.
pub fn attention_sparsity(probs: &[f32], threshold: f32) -> f64 {
    if probs.is_empty() {
        return 0.0;
    }
    let max = probs.iter().copied().fold(0.0f32, f32::max);
    let cutoff = max * threshold;
    let sparse = probs.iter().filter(|&&p| p <= cutoff).count();
    sparse as f64 / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_shift_concentrates_mass_on_survivors() {
        // Mirrors Figure 4: eight logits, half evicted.
        let logits = [1.0, 0.9, 0.3, 1.8, 1.5, 1.2, -0.3, 0.5];
        let shift = softmax_shift(&logits, &[3, 4, 5, 7]);
        let full_sum: f32 = shift.full.iter().sum();
        let reduced_sum: f32 = shift.reduced.iter().sum();
        assert!((full_sum - 1.0).abs() < 1e-5);
        assert!((reduced_sum - 1.0).abs() < 1e-5);
        // Survivors' probabilities grow after eviction.
        for &i in &[3usize, 4, 5, 7] {
            assert!(shift.reduced[i] > shift.full[i]);
        }
        // Evicted slots carry zero mass afterwards.
        for &i in &[0usize, 1, 2, 6] {
            assert_eq!(shift.reduced[i], 0.0);
        }
        assert!(shift.retained_mass < 1.0);
        assert!(shift.total_variation > 0.0);
    }

    #[test]
    fn softmax_shift_with_everything_retained_is_identity() {
        let logits = [0.2, 0.4, 0.6];
        let shift = softmax_shift(&logits, &[0, 1, 2]);
        for (a, b) in shift.full.iter().zip(&shift.reduced) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!((shift.retained_mass - 1.0).abs() < 1e-6);
        assert!(shift.total_variation < 1e-6);
    }

    #[test]
    fn gumbel_adjustment_increases_entropy() {
        // Equation 8: the expected Gumbel-softmax distribution is more uniform.
        let logits = [4.0, 1.0, 0.5, 0.2, 0.1, -0.5, -1.0, 2.5];
        let gain = entropy_gain(&logits, LogitAdjustment::Gumbel, 200, 3);
        assert!(gain.gain() > 0.0, "expected entropy gain, got {:?}", gain);
    }

    #[test]
    fn constant_adjustment_does_not_change_entropy() {
        let logits = [4.0, 1.0, 0.5, 0.2];
        let gain = entropy_gain(&logits, LogitAdjustment::Constant(0.5772), 10, 3);
        assert!(gain.gain().abs() < 1e-4);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let probs = softmax(&[5.0, 3.0, 1.0, 0.5, 0.2, 0.1, 0.0, -1.0]);
        let fractions = [0.1, 0.25, 0.5, 0.75, 1.0];
        let curve = attention_mass_cdf(&probs, &fractions);
        for pair in curve.windows(2) {
            assert!(pair[1].attention_mass >= pair[0].attention_mass);
        }
        assert!((curve.last().unwrap().attention_mass - 1.0).abs() < 1e-6);
        // Skewed distribution: half the tokens carry the vast majority of the mass.
        assert!(curve[2].attention_mass > 0.9);
    }

    #[test]
    fn cdf_handles_degenerate_inputs() {
        assert!(attention_mass_cdf(&[], &[0.5])[0].attention_mass == 0.0);
        let flat = attention_mass_cdf(&[0.25; 4], &[0.5]);
        assert!((flat[0].attention_mass - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sparsity_counts_low_attention_tokens() {
        let probs = [0.9, 0.05, 0.03, 0.02, 0.0];
        assert!((attention_sparsity(&probs, 0.0) - 0.2).abs() < 1e-9);
        assert!(attention_sparsity(&probs, 0.1) >= 0.8);
        assert_eq!(attention_sparsity(&[], 0.0), 0.0);
    }
}

//! Cached positional rotations of stored keys.
//!
//! The KV cache stores *unrotated* keys (see [`crate::cache`]); attention
//! applies RoPE at read time. Naively that means re-rotating every live key of
//! every head on every decode step — `O(live × heads)` trig per token for
//! values that only change when a key's row or effective position changes.
//!
//! [`RotatedKeyCache`] memoizes those rotations per block. Each entry is keyed
//! on the block's `(id, generation)` pair from
//! [`crate::cache::LayerKvCache::block_meta`]:
//!
//! - **Plain appends** keep a block's generation, so [`RotatedKeyCache::sync`]
//!   only rotates the newly appended rows (a top-up).
//! - **Compaction rewrites, CoW forks and quantize-on-seal** refresh the
//!   generation, so the affected block is rebuilt from scratch while the
//!   untouched identity prefix keeps its cached rotations.
//! - **Block-id reuse** by the pool cannot alias: generations are globally
//!   unique, so a recycled id never matches a stale entry.
//!
//! The caller supplies the rotation itself as a closure (the model layer owns
//! RoPE and the position-mode ablations); this crate only owns the
//! invalidation discipline.

use crate::block::BlockId;
use crate::cache::LayerKvCache;

/// Memoized rotation state of one cache block: every row of every head,
/// rotated, in one flat head-major buffer.
#[derive(Debug, Clone)]
struct RotBlock {
    id: BlockId,
    generation: u64,
    /// Rows of the block already rotated (a prefix of the block's rows).
    rows: usize,
    /// `[head][row][dim]`: `num_heads * block_size * head_dim` values,
    /// allocated once when the block first appears.
    data: Vec<f32>,
}

/// Per-layer cache of rotated key rows, invalidated by block generation.
///
/// One instance serves one `(layer, query-invariant rotation)` pair: the
/// rotation closure passed to [`RotatedKeyCache::sync`] must depend only on
/// the slot (not on the decode step), which holds for RoPE at the key's
/// effective position in both of the paper's position modes.
#[derive(Debug, Clone)]
pub struct RotatedKeyCache {
    num_heads: usize,
    head_dim: usize,
    block_size: usize,
    blocks: Vec<RotBlock>,
}

impl RotatedKeyCache {
    /// Creates an empty cache for a layer of `num_heads` heads of width
    /// `head_dim` over blocks of `block_size` slots.
    pub fn new(num_heads: usize, head_dim: usize, block_size: usize) -> Self {
        RotatedKeyCache {
            num_heads,
            head_dim,
            block_size,
            blocks: Vec::new(),
        }
    }

    /// Brings the cached rotations up to date with `cache`.
    ///
    /// `rotate(row, slot)` must rotate the unrotated key row (already copied
    /// into `row`) of logical slot `slot` in place. After `sync` returns,
    /// [`RotatedKeyCache::row`] serves every live slot of every head.
    ///
    /// Cost: proportional to the rows whose `(id, generation)` changed plus
    /// freshly appended rows — zero steady-state work (and zero allocations
    /// away from block boundaries) during decode without eviction. This is
    /// also the batch-rotate primitive of chunk-batched prefill: after a bulk
    /// append of a whole chunk's key rows
    /// ([`LayerKvCache::append_batch_from_slices`]), one `sync` call tops up
    /// every appended row (and rebuilds any block a quantize-on-seal
    /// generation bump invalidated) in a single pass.
    ///
    /// # Panics
    ///
    /// Panics if `cache`'s head count, head width or block size differ from
    /// this cache's.
    pub fn sync(&mut self, cache: &LayerKvCache, mut rotate: impl FnMut(&mut [f32], usize)) {
        assert_eq!(cache.num_heads(), self.num_heads, "head count mismatch");
        assert_eq!(cache.head_dim(), self.head_dim, "head width mismatch");
        assert_eq!(cache.block_size(), self.block_size, "block size mismatch");
        let num_blocks = cache.num_blocks();
        self.blocks.truncate(num_blocks);
        for idx in 0..num_blocks {
            let meta = cache.block_meta(idx);
            if self.blocks.len() == idx {
                self.blocks.push(RotBlock {
                    id: meta.id,
                    generation: meta.generation,
                    rows: 0,
                    data: vec![0.0; self.num_heads * self.block_size * self.head_dim],
                });
            }
            let entry = &mut self.blocks[idx];
            if entry.id != meta.id || entry.generation != meta.generation {
                entry.id = meta.id;
                entry.generation = meta.generation;
                entry.rows = 0;
            }
            debug_assert!(
                entry.rows <= meta.rows,
                "a block never loses rows without a generation change"
            );
            if entry.rows >= meta.rows {
                continue;
            }
            let base = idx * self.block_size;
            for head in 0..self.num_heads {
                let keys = cache.keys(head);
                let head_base = head * self.block_size * self.head_dim;
                for row in entry.rows..meta.rows {
                    let slot = base + row;
                    let start = head_base + row * self.head_dim;
                    let dst = &mut entry.data[start..start + self.head_dim];
                    keys.copy_row_into(slot, dst);
                    rotate(dst, slot);
                }
            }
            entry.rows = meta.rows;
        }
    }

    /// The cached rotated key of `head` at logical slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot or head was not covered by the last
    /// [`RotatedKeyCache::sync`].
    #[inline]
    pub fn row(&self, head: usize, slot: usize) -> &[f32] {
        let block = &self.blocks[slot / self.block_size];
        let row = slot % self.block_size;
        assert!(row < block.rows, "slot not covered by the last sync");
        let start = (head * self.block_size + row) * self.head_dim;
        &block.data[start..start + self.head_dim]
    }

    /// Slots covered by the last [`RotatedKeyCache::sync`].
    pub fn covered_slots(&self) -> usize {
        match self.blocks.last() {
            None => 0,
            Some(last) => (self.blocks.len() - 1) * self.block_size + last.rows,
        }
    }

    /// Drops every cached rotation (e.g. when the owning session rebinds to a
    /// different sequence).
    pub fn clear(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SharedBlockPool;
    use crate::cache::KvDtype;

    /// A deterministic stand-in for RoPE: scales the row by a slot-dependent
    /// factor, so stale cache entries are easy to detect.
    fn fake_rotate(row: &mut [f32], slot: usize) {
        for x in row.iter_mut() {
            *x = *x * 2.0 + slot as f32;
        }
    }

    fn expected_row(layer: &LayerKvCache, head: usize, slot: usize) -> Vec<f32> {
        let mut row = layer.keys(head).row(slot).into_owned();
        fake_rotate(&mut row, slot);
        row
    }

    fn assert_in_sync(rot: &RotatedKeyCache, layer: &LayerKvCache) {
        assert_eq!(rot.covered_slots(), layer.len());
        for head in 0..layer.num_heads() {
            for slot in 0..layer.len() {
                assert_eq!(
                    rot.row(head, slot),
                    expected_row(layer, head, slot).as_slice(),
                    "head {head} slot {slot}"
                );
            }
        }
    }

    fn append_tokens(layer: &mut LayerKvCache, n: usize) {
        let start = layer.len();
        for i in start..start + n {
            let k: Vec<Vec<f32>> = (0..2).map(|h| vec![i as f32 + h as f32 * 0.5; 3]).collect();
            let v = k.clone();
            layer.append(i, &k, &v).unwrap();
        }
    }

    fn rot_for(layer: &LayerKvCache) -> RotatedKeyCache {
        RotatedKeyCache::new(layer.num_heads(), layer.head_dim(), layer.block_size())
    }

    #[test]
    fn sync_covers_appends_incrementally() {
        let pool = SharedBlockPool::unbounded(4);
        let mut layer = LayerKvCache::with_pool(2, 3, pool);
        let mut rot = rot_for(&layer);
        rot.sync(&layer, fake_rotate);
        assert_eq!(rot.covered_slots(), 0);
        append_tokens(&mut layer, 6);
        rot.sync(&layer, fake_rotate);
        assert_in_sync(&rot, &layer);
        // A second sync with a counting rotate proves appends only top up.
        append_tokens(&mut layer, 1);
        let mut rotations = 0;
        rot.sync(&layer, |row, slot| {
            rotations += 1;
            fake_rotate(row, slot);
        });
        assert_eq!(rotations, 2, "one new row x two heads");
        assert_in_sync(&rot, &layer);
    }

    #[test]
    fn compaction_rebuilds_written_blocks_and_keeps_the_identity_prefix() {
        let pool = SharedBlockPool::unbounded(4);
        let mut layer = LayerKvCache::with_pool(2, 3, pool);
        append_tokens(&mut layer, 11);
        let mut rot = rot_for(&layer);
        rot.sync(&layer, fake_rotate);
        // Keep block 0 byte-identical, compact the rest.
        layer.retain_slots(&[0, 1, 2, 3, 5, 8, 10]).unwrap();
        let mut rotations = 0;
        rot.sync(&layer, |row, slot| {
            rotations += 1;
            fake_rotate(row, slot);
        });
        // Only the rewritten second block (3 rows x 2 heads) re-rotates.
        assert_eq!(rotations, 6, "identity prefix must stay cached");
        assert_in_sync(&rot, &layer);
    }

    #[test]
    fn cow_fork_rebuilds_only_the_forked_block() {
        let pool = SharedBlockPool::unbounded(4);
        let mut layer = LayerKvCache::with_pool(2, 3, pool);
        append_tokens(&mut layer, 6);
        let mut fork = layer.fork().unwrap();
        let mut rot = rot_for(&fork);
        rot.sync(&fork, fake_rotate);
        // Appending into the shared tail CoW-forks it: the rotated copy of
        // that block is stale even though its row contents match, because the
        // physical block changed identity.
        append_tokens(&mut fork, 1);
        let mut rotations = 0;
        rot.sync(&fork, |row, slot| {
            rotations += 1;
            fake_rotate(row, slot);
        });
        assert_eq!(rotations, 6, "forked tail (3 rows) x 2 heads rebuilds");
        assert_in_sync(&rot, &fork);
        // The donor's own rotated cache stays fully valid.
        let mut donor_rot = rot_for(&layer);
        donor_rot.sync(&layer, fake_rotate);
        let mut donor_rotations = 0;
        donor_rot.sync(&layer, |row, slot| {
            donor_rotations += 1;
            fake_rotate(row, slot);
        });
        assert_eq!(donor_rotations, 0);
    }

    #[test]
    fn requantize_on_seal_invalidates_the_sealed_block() {
        let pool = SharedBlockPool::unbounded(4);
        let mut layer = LayerKvCache::with_pool_dtype(2, 3, pool, KvDtype::U8);
        append_tokens(&mut layer, 3);
        let mut rot = rot_for(&layer);
        rot.sync(&layer, fake_rotate);
        assert_in_sync(&rot, &layer);
        // The fourth append fills and seals the block: every row's dequantized
        // value changes, so the whole block must re-rotate.
        append_tokens(&mut layer, 1);
        let mut rotations = 0;
        rot.sync(&layer, |row, slot| {
            rotations += 1;
            fake_rotate(row, slot);
        });
        assert_eq!(rotations, 8, "all 4 rows x 2 heads rebuild after seal");
        assert_in_sync(&rot, &layer);
    }

    #[test]
    fn clear_and_shrinking_tables_drop_stale_blocks() {
        let pool = SharedBlockPool::unbounded(2);
        let mut layer = LayerKvCache::with_pool(2, 3, pool);
        append_tokens(&mut layer, 6);
        let mut rot = rot_for(&layer);
        rot.sync(&layer, fake_rotate);
        assert_eq!(rot.covered_slots(), 6);
        layer.retain_slots(&[0, 1]).unwrap();
        rot.sync(&layer, fake_rotate);
        assert_in_sync(&rot, &layer);
        rot.clear();
        assert_eq!(rot.covered_slots(), 0);
    }
}

//! The [`KvCachePolicy`] trait and shared selection helpers.

use crate::budget::CacheBudget;
use crate::observation::AttentionObservation;

/// A KV-cache reduction strategy.
///
/// A policy is driven by the attention module of a decoder:
///
/// 1. after each head computes its unnormalized logits against the live cache slots,
///    the model calls [`observe`](KvCachePolicy::observe);
/// 2. once the step's new token has been appended and the layer's slot count exceeds
///    the [`CacheBudget`], the model calls
///    [`select_retained`](KvCachePolicy::select_retained) to get the surviving slots;
/// 3. after compacting the cache the model calls
///    [`compact`](KvCachePolicy::compact) so the policy can gather its own per-slot
///    state (accumulated scores) down to the same subset.
///
/// The retained-slot contract: the returned vector must be sorted, contain unique
/// in-bounds indices, and have length `min(live, budget.capacity())`.
/// [`crate::cache::validate_selection`] checks the structural part of that contract.
pub trait KvCachePolicy: Send {
    /// Short, stable identifier used in tables and benchmark labels.
    fn name(&self) -> &'static str;

    /// Records one head's attention logits for one decode step.
    fn observe(&mut self, obs: &AttentionObservation<'_>);

    /// Chooses which cache slots of `layer` survive, given `live` current slots and
    /// the target budget. Must satisfy the retained-slot contract described above.
    fn select_retained(&mut self, layer: usize, live: usize, budget: &CacheBudget) -> Vec<usize>;

    /// Notifies the policy that `layer`'s cache was compacted to `retained` so it can
    /// remap any per-slot state it keeps.
    fn compact(&mut self, layer: usize, retained: &[usize]);

    /// Clears all per-sequence state, making the policy reusable for a new request.
    fn reset(&mut self);

    /// Snapshots the policy — accumulated scores, RNG stream position and all —
    /// into an independent boxed clone. The prefix registry stores such
    /// snapshots at block boundaries so a sequence attaching to a cached prefix
    /// resumes with *exactly* the policy state a cold start would have reached
    /// at that point; [`crate::spec::PolicySpec::build`] plus replayed
    /// observations would get there too, but only by redoing the forwards the
    /// attach exists to skip.
    fn clone_box(&self) -> Box<dyn KvCachePolicy>;
}

/// Returns the slot indices of the most recent `window` slots of a cache holding
/// `live` slots (i.e. the suffix), sorted ascending.
pub fn recent_slots(live: usize, window: usize) -> Vec<usize> {
    let start = live.saturating_sub(window);
    (start..live).collect()
}

/// Keeps every slot: the identity selection `0..live` truncated to nothing (used by
/// the full-attention policy, which never evicts).
pub fn all_slots(live: usize) -> Vec<usize> {
    (0..live).collect()
}

/// Merges a set of key-token indices with the recent window, deduplicating and
/// sorting, then tops the result up with the highest-scoring remaining slots if the
/// union came up short of `target` (which happens when key tokens fall inside the
/// recent window).
///
/// `scores[i]` is the selection score of slot `i`; slots already selected are skipped
/// during the top-up. The result always has length `min(live, target)`.
pub fn merge_key_and_recent(
    key_slots: &[usize],
    live: usize,
    target: usize,
    recent_window: usize,
    scores: &[f32],
) -> Vec<usize> {
    let target = target.min(live);
    let mut keep = vec![false; live];
    for &s in key_slots {
        if s < live {
            keep[s] = true;
        }
    }
    for s in recent_slots(live, recent_window) {
        keep[s] = true;
    }
    let mut selected: Vec<usize> = (0..live).filter(|&i| keep[i]).collect();
    if selected.len() > target {
        // Too many: drop the lowest-scoring non-recent slots first.
        let recent_start = live.saturating_sub(recent_window);
        let mut droppable: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|&i| i < recent_start)
            .collect();
        droppable.sort_by(|&a, &b| {
            let sa = scores.get(a).copied().unwrap_or(0.0);
            let sb = scores.get(b).copied().unwrap_or(0.0);
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut to_drop = selected.len() - target;
        for idx in droppable {
            if to_drop == 0 {
                break;
            }
            keep[idx] = false;
            to_drop -= 1;
        }
        selected = (0..live).filter(|&i| keep[i]).collect();
        selected.truncate(target);
    } else if selected.len() < target {
        // Too few: top up with the best remaining slots by score.
        let mut remaining: Vec<usize> = (0..live).filter(|&i| !keep[i]).collect();
        remaining.sort_by(|&a, &b| {
            let sa = scores.get(a).copied().unwrap_or(0.0);
            let sb = scores.get(b).copied().unwrap_or(0.0);
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        for idx in remaining.into_iter().take(target - selected.len()) {
            keep[idx] = true;
        }
        selected = (0..live).filter(|&i| keep[i]).collect();
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_slots_is_a_suffix() {
        assert_eq!(recent_slots(5, 2), vec![3, 4]);
        assert_eq!(recent_slots(3, 10), vec![0, 1, 2]);
        assert_eq!(recent_slots(0, 2), Vec::<usize>::new());
    }

    #[test]
    fn all_slots_is_identity_range() {
        assert_eq!(all_slots(3), vec![0, 1, 2]);
        assert!(all_slots(0).is_empty());
    }

    #[test]
    fn merge_combines_key_and_recent() {
        let scores = [5.0, 1.0, 4.0, 0.5, 0.2, 0.1];
        // key slots 0 and 2, recent window of 2 over 6 live slots -> {0, 2, 4, 5}.
        let sel = merge_key_and_recent(&[0, 2], 6, 4, 2, &scores);
        assert_eq!(sel, vec![0, 2, 4, 5]);
    }

    #[test]
    fn merge_tops_up_when_key_slots_overlap_recent() {
        let scores = [0.9, 0.1, 0.2, 0.3, 0.4, 0.5];
        // Key slots all fall inside the recent window; top-up must pull slot 0 (best
        // remaining score).
        let sel = merge_key_and_recent(&[4, 5], 6, 4, 2, &scores);
        assert_eq!(sel.len(), 4);
        assert!(sel.contains(&0));
        assert!(sel.contains(&4) && sel.contains(&5));
    }

    #[test]
    fn merge_drops_lowest_scoring_when_over_target() {
        let scores = [0.9, 0.8, 0.01, 0.7, 0.6, 0.5];
        let sel = merge_key_and_recent(&[0, 1, 2, 3], 6, 4, 2, &scores);
        assert_eq!(sel.len(), 4);
        // Slot 2 has the lowest score among non-recent slots and must be dropped.
        assert!(!sel.contains(&2));
        assert!(sel.contains(&4) && sel.contains(&5));
    }

    #[test]
    fn merge_handles_target_larger_than_live() {
        let sel = merge_key_and_recent(&[0], 3, 10, 1, &[1.0, 2.0, 3.0]);
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn merge_result_is_sorted_and_unique() {
        let scores: Vec<f32> = (0..20).map(|i| (i as f32 * 7.3) % 1.0).collect();
        let sel = merge_key_and_recent(&[1, 5, 9, 13], 20, 10, 4, &scores);
        assert_eq!(sel.len(), 10);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sel, sorted);
    }
}

//! KV-cache budgets: how many slots survive and how many of those are a recent window.

use crate::CoreError;
use serde::{Deserialize, Serialize};

/// An absolute per-layer KV-cache budget.
///
/// `capacity` is the paper's `k` (total retained slots) and `recent_window` is `w`
/// (the most recent tokens that are always kept). The remaining `k - w` slots are the
/// *key token* window filled by the policy's score function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheBudget {
    capacity: usize,
    recent_window: usize,
}

impl CacheBudget {
    /// Creates a budget of `capacity` slots of which `recent_window` are reserved for
    /// the most recent tokens.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `recent_window > capacity`. Use
    /// [`CacheBudget::try_new`] for a fallible constructor.
    pub fn new(capacity: usize, recent_window: usize) -> Self {
        Self::try_new(capacity, recent_window).expect("invalid cache budget")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `capacity == 0` or
    /// `recent_window > capacity`.
    pub fn try_new(capacity: usize, recent_window: usize) -> Result<Self, CoreError> {
        if capacity == 0 {
            return Err(CoreError::InvalidConfig(
                "cache capacity must be at least 1".into(),
            ));
        }
        if recent_window > capacity {
            return Err(CoreError::InvalidConfig(format!(
                "recent window {recent_window} exceeds capacity {capacity}"
            )));
        }
        Ok(CacheBudget {
            capacity,
            recent_window,
        })
    }

    /// Total number of retained slots (`k`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of slots reserved for the most recent tokens (`w`).
    pub fn recent_window(&self) -> usize {
        self.recent_window
    }

    /// Number of slots available to key tokens (`k - w`).
    pub fn key_token_slots(&self) -> usize {
        self.capacity - self.recent_window
    }

    /// Returns `true` when a cache currently holding `live` slots must be reduced.
    pub fn needs_eviction(&self, live: usize) -> bool {
        live > self.capacity
    }
}

/// A relative budget specification, expressed the way the paper sweeps it: the KV
/// cache is a *fraction* of the prompt length, and the recent window is a *ratio* of
/// the resulting capacity.
///
/// ```
/// use keyformer_core::budget::CacheBudgetSpec;
///
/// // "50% KV cache, 30% recent ratio" applied to a 400-token prompt.
/// let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
/// let budget = spec.for_prompt_len(400);
/// assert_eq!(budget.capacity(), 200);
/// assert_eq!(budget.recent_window(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheBudgetSpec {
    cache_fraction: f64,
    recent_ratio: f64,
    min_capacity: usize,
}

impl CacheBudgetSpec {
    /// Default recent-token ratio used throughout the paper's main experiments.
    pub const DEFAULT_RECENT_RATIO: f64 = 0.3;

    /// Creates a spec with the given KV-cache fraction (of prompt length) and recent
    /// ratio (of the resulting capacity).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless both values lie in `(0, 1]`.
    pub fn new(cache_fraction: f64, recent_ratio: f64) -> Result<Self, CoreError> {
        if !(cache_fraction > 0.0 && cache_fraction <= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "cache fraction {cache_fraction} must be in (0, 1]"
            )));
        }
        if !(recent_ratio > 0.0 && recent_ratio <= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "recent ratio {recent_ratio} must be in (0, 1]"
            )));
        }
        Ok(CacheBudgetSpec {
            cache_fraction,
            recent_ratio,
            min_capacity: 4,
        })
    }

    /// Convenience constructor with the paper's default recent ratio.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `cache_fraction` is outside `(0, 1]`.
    pub fn with_fraction(cache_fraction: f64) -> Result<Self, CoreError> {
        Self::new(cache_fraction, Self::DEFAULT_RECENT_RATIO)
    }

    /// Sets the minimum capacity any derived budget will have (default 4), protecting
    /// tiny prompts from degenerate budgets.
    pub fn with_min_capacity(mut self, min_capacity: usize) -> Self {
        self.min_capacity = min_capacity.max(1);
        self
    }

    /// KV-cache fraction of the prompt length.
    pub fn cache_fraction(&self) -> f64 {
        self.cache_fraction
    }

    /// Recent-window ratio of the capacity.
    pub fn recent_ratio(&self) -> f64 {
        self.recent_ratio
    }

    /// Materialises an absolute [`CacheBudget`] for a prompt of `prompt_len` tokens.
    ///
    /// The capacity is `ceil(cache_fraction * prompt_len)` clamped to
    /// `[min_capacity, prompt_len.max(min_capacity)]`; the recent window is
    /// `round(recent_ratio * capacity)` clamped to `[1, capacity]`.
    pub fn for_prompt_len(&self, prompt_len: usize) -> CacheBudget {
        let raw = (self.cache_fraction * prompt_len as f64).ceil() as usize;
        let capacity = raw.max(self.min_capacity);
        let recent = ((self.recent_ratio * capacity as f64).round() as usize).clamp(1, capacity);
        CacheBudget::new(capacity, recent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accessors() {
        let b = CacheBudget::new(10, 3);
        assert_eq!(b.capacity(), 10);
        assert_eq!(b.recent_window(), 3);
        assert_eq!(b.key_token_slots(), 7);
        assert!(b.needs_eviction(11));
        assert!(!b.needs_eviction(10));
    }

    #[test]
    fn budget_rejects_bad_shapes() {
        assert!(CacheBudget::try_new(0, 0).is_err());
        assert!(CacheBudget::try_new(4, 5).is_err());
        assert!(CacheBudget::try_new(4, 4).is_ok());
    }

    #[test]
    fn spec_rejects_out_of_range_fractions() {
        assert!(CacheBudgetSpec::new(0.0, 0.3).is_err());
        assert!(CacheBudgetSpec::new(1.1, 0.3).is_err());
        assert!(CacheBudgetSpec::new(0.5, 0.0).is_err());
        assert!(CacheBudgetSpec::new(0.5, 1.5).is_err());
        assert!(CacheBudgetSpec::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn spec_materialises_expected_budget() {
        let spec = CacheBudgetSpec::new(0.5, 0.2).unwrap();
        let b = spec.for_prompt_len(1000);
        assert_eq!(b.capacity(), 500);
        assert_eq!(b.recent_window(), 100);
    }

    #[test]
    fn spec_clamps_tiny_prompts() {
        let spec = CacheBudgetSpec::new(0.1, 0.3).unwrap().with_min_capacity(8);
        let b = spec.for_prompt_len(10);
        assert_eq!(b.capacity(), 8);
        assert!(b.recent_window() >= 1);
    }

    #[test]
    fn default_recent_ratio_constructor() {
        let spec = CacheBudgetSpec::with_fraction(0.7).unwrap();
        assert!((spec.recent_ratio() - CacheBudgetSpec::DEFAULT_RECENT_RATIO).abs() < 1e-12);
        assert!((spec.cache_fraction() - 0.7).abs() < 1e-12);
    }
}

//! Logit-adjustment distributions used to regularize the score function.
//!
//! Keyformer adds a noise term `ζ_i` drawn from the standard Gumbel distribution to
//! the unnormalized logits before scoring (Equation 4). The paper's Table 4 ablates
//! this choice against a symmetric Gaussian with the same mean/variance, a constant
//! offset equal to the Gumbel mean, and no adjustment at all (which recovers H2O's
//! score function). All four variants live here.

use keyformer_tensor::init::{gaussian_sample, gumbel_sample, GUMBEL_MEAN, GUMBEL_STD};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution added to unnormalized attention logits before scoring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LogitAdjustment {
    /// No adjustment: `y_i = x_i`. This is the H2O-style accumulated-attention score.
    None,
    /// A constant offset: `y_i = x_i + c`.
    Constant(f32),
    /// Symmetric Gaussian noise with the given mean and standard deviation.
    Gaussian {
        /// Mean of the Gaussian.
        mean: f32,
        /// Standard deviation of the Gaussian.
        std: f32,
    },
    /// Standard Gumbel noise (location 0, scale 1) — the Keyformer default.
    #[default]
    Gumbel,
}

impl LogitAdjustment {
    /// The paper's constant-adjustment baseline: `c` equal to the Gumbel mean
    /// (`γ ≈ 0.5772`).
    pub fn paper_constant() -> Self {
        LogitAdjustment::Constant(GUMBEL_MEAN)
    }

    /// The paper's Gaussian baseline: identical mean and standard deviation to the
    /// standard Gumbel distribution (`μ = 0.5772`, `σ = 1.2825`).
    pub fn paper_gaussian() -> Self {
        LogitAdjustment::Gaussian {
            mean: GUMBEL_MEAN,
            std: GUMBEL_STD,
        }
    }

    /// Draws one adjustment sample `ζ_i`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        match *self {
            LogitAdjustment::None => 0.0,
            LogitAdjustment::Constant(c) => c,
            LogitAdjustment::Gaussian { mean, std } => mean + std * gaussian_sample(rng),
            LogitAdjustment::Gumbel => gumbel_sample(rng),
        }
    }

    /// Returns `x_i + ζ_i` for every logit, drawing independent samples per position.
    pub fn adjust<R: Rng>(&self, logits: &[f32], rng: &mut R) -> Vec<f32> {
        logits.iter().map(|&x| x + self.sample(rng)).collect()
    }

    /// Short human-readable label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            LogitAdjustment::None => "none",
            LogitAdjustment::Constant(_) => "constant",
            LogitAdjustment::Gaussian { .. } => "gaussian",
            LogitAdjustment::Gumbel => "gumbel",
        }
    }
}

impl std::fmt::Display for LogitAdjustment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogitAdjustment::None => write!(f, "none"),
            LogitAdjustment::Constant(c) => write!(f, "constant({c})"),
            LogitAdjustment::Gaussian { mean, std } => {
                write!(f, "gaussian(mu={mean}, sigma={std})")
            }
            LogitAdjustment::Gumbel => write!(f, "gumbel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_tensor::vector::{mean, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = [1.0, -2.0, 3.0];
        assert_eq!(
            LogitAdjustment::None.adjust(&logits, &mut rng),
            logits.to_vec()
        );
    }

    #[test]
    fn constant_shifts_every_logit() {
        let mut rng = StdRng::seed_from_u64(1);
        let adjusted = LogitAdjustment::Constant(2.0).adjust(&[0.0, 1.0], &mut rng);
        assert_eq!(adjusted, vec![2.0, 3.0]);
    }

    #[test]
    fn gaussian_matches_requested_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let adj = LogitAdjustment::Gaussian {
            mean: 1.0,
            std: 0.5,
        };
        let samples: Vec<f32> = (0..20_000).map(|_| adj.sample(&mut rng)).collect();
        assert!((mean(&samples) - 1.0).abs() < 0.03);
        assert!((variance(&samples).sqrt() - 0.5).abs() < 0.03);
    }

    #[test]
    fn gumbel_matches_theory_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f32> = (0..20_000)
            .map(|_| LogitAdjustment::Gumbel.sample(&mut rng))
            .collect();
        assert!((mean(&samples) - GUMBEL_MEAN).abs() < 0.05);
        assert!((variance(&samples).sqrt() - GUMBEL_STD).abs() < 0.08);
    }

    #[test]
    fn paper_baselines_share_gumbel_moments() {
        match LogitAdjustment::paper_gaussian() {
            LogitAdjustment::Gaussian { mean, std } => {
                assert!((mean - GUMBEL_MEAN).abs() < 1e-6);
                assert!((std - GUMBEL_STD).abs() < 1e-6);
            }
            other => panic!("unexpected variant {other:?}"),
        }
        match LogitAdjustment::paper_constant() {
            LogitAdjustment::Constant(c) => assert!((c - GUMBEL_MEAN).abs() < 1e-6),
            other => panic!("unexpected variant {other:?}"),
        }
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(LogitAdjustment::Gumbel.label(), "gumbel");
        assert_eq!(LogitAdjustment::None.label(), "none");
        assert_eq!(LogitAdjustment::paper_constant().label(), "constant");
        assert_eq!(LogitAdjustment::paper_gaussian().label(), "gaussian");
        assert!(LogitAdjustment::Gumbel.to_string().contains("gumbel"));
        assert!(LogitAdjustment::Constant(1.5).to_string().contains("1.5"));
    }

    #[test]
    fn default_is_gumbel() {
        assert_eq!(LogitAdjustment::default(), LogitAdjustment::Gumbel);
    }
}

//! Declarative policy specifications.
//!
//! The harness sweeps over many policies and configurations (Figure 7, Tables 3–4).
//! [`PolicySpec`] is a serializable description of a policy that can be turned into a
//! boxed [`KvCachePolicy`] on demand, so experiment definitions stay data.

use crate::accumulator::ScoreScope;
use crate::adjustment::LogitAdjustment;
use crate::policies::damped::DampedAttention;
use crate::policies::full::FullAttention;
use crate::policies::h2o::{H2OConfig, H2O};
use crate::policies::key_only::KeyOnlyAttention;
use crate::policies::keyformer::{Keyformer, KeyformerConfig};
use crate::policies::streaming::StreamingLlm;
use crate::policies::window::{DilatedWindowAttention, WindowAttention};
use crate::policy::KvCachePolicy;
use crate::temperature::TemperatureSchedule;
use crate::CoreError;
use serde::{Deserialize, Serialize};

/// A serializable description of a KV-cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Full attention (no eviction).
    Full,
    /// Sliding-window attention.
    Window,
    /// Dilated sliding-window attention with the given dilation.
    DilatedWindow {
        /// Number of skipped slots between kept slots.
        dilation: usize,
    },
    /// Key-token-only attention (no recent window), the Figure 3c strawman.
    KeyOnly,
    /// H2O heavy hitters.
    H2O {
        /// Score-accumulation scope.
        scope: ScoreScope,
    },
    /// H2O-style scoring with a damping factor α (Figure 5).
    Damped {
        /// Damping factor in `(0, 1]`.
        alpha: f32,
    },
    /// StreamingLLM attention sinks.
    StreamingLlm {
        /// Number of sink tokens.
        sinks: usize,
    },
    /// Keyformer.
    Keyformer {
        /// Logit-adjustment distribution.
        adjustment: LogitAdjustment,
        /// Temperature schedule.
        temperature: TemperatureSchedule,
        /// Score-accumulation scope.
        scope: ScoreScope,
        /// Noise seed.
        seed: u64,
    },
}

impl PolicySpec {
    /// The paper's default Keyformer configuration.
    pub fn keyformer_default() -> Self {
        let c = KeyformerConfig::default();
        PolicySpec::Keyformer {
            adjustment: c.adjustment,
            temperature: c.temperature,
            scope: c.scope,
            seed: c.seed,
        }
    }

    /// The paper's default H2O configuration.
    pub fn h2o_default() -> Self {
        PolicySpec::H2O {
            scope: ScoreScope::PerLayer,
        }
    }

    /// The default StreamingLLM configuration (4 sinks).
    pub fn streaming_default() -> Self {
        PolicySpec::StreamingLlm {
            sinks: StreamingLlm::DEFAULT_SINKS,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Full => "Full".into(),
            PolicySpec::Window => "Window".into(),
            PolicySpec::DilatedWindow { dilation } => format!("DilatedWindow(d={dilation})"),
            PolicySpec::KeyOnly => "KeyOnly".into(),
            PolicySpec::H2O { scope } => format!("H2O({scope})"),
            PolicySpec::Damped { alpha } => format!("Damped(alpha={alpha})"),
            PolicySpec::StreamingLlm { sinks } => format!("StreamingLLM(sinks={sinks})"),
            PolicySpec::Keyformer {
                adjustment, scope, ..
            } => format!("Keyformer({}, {scope})", adjustment.label()),
        }
    }

    /// Instantiates the policy described by this spec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the spec's parameters are invalid
    /// (e.g. a damping factor outside `(0, 1]`).
    pub fn build(&self) -> Result<Box<dyn KvCachePolicy>, CoreError> {
        Ok(match *self {
            PolicySpec::Full => Box::new(FullAttention::new()),
            PolicySpec::Window => Box::new(WindowAttention::new()),
            PolicySpec::DilatedWindow { dilation } => {
                Box::new(DilatedWindowAttention::new(dilation))
            }
            PolicySpec::KeyOnly => Box::new(KeyOnlyAttention::new()),
            PolicySpec::H2O { scope } => Box::new(H2O::new(H2OConfig { scope })),
            PolicySpec::Damped { alpha } => Box::new(DampedAttention::new(alpha)?),
            PolicySpec::StreamingLlm { sinks } => Box::new(StreamingLlm::new(sinks)),
            PolicySpec::Keyformer {
                adjustment,
                temperature,
                scope,
                seed,
            } => {
                let config = KeyformerConfig {
                    adjustment,
                    temperature,
                    scope,
                    seed,
                };
                config.validate()?;
                Box::new(Keyformer::new(config))
            }
        })
    }
}

impl std::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_builds_and_reports_name() {
        let specs = [
            (PolicySpec::Full, "full"),
            (PolicySpec::Window, "window"),
            (PolicySpec::DilatedWindow { dilation: 1 }, "dilated-window"),
            (PolicySpec::KeyOnly, "key-only"),
            (PolicySpec::h2o_default(), "h2o"),
            (PolicySpec::Damped { alpha: 0.9 }, "damped"),
            (PolicySpec::streaming_default(), "streaming-llm"),
            (PolicySpec::keyformer_default(), "keyformer"),
        ];
        for (spec, expected) in specs {
            let policy = spec.build().unwrap();
            assert_eq!(policy.name(), expected, "spec {spec}");
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PolicySpec::Damped { alpha: 0.0 }.build().is_err());
        assert!(PolicySpec::Keyformer {
            adjustment: LogitAdjustment::Gumbel,
            temperature: TemperatureSchedule::Static(-1.0),
            scope: ScoreScope::PerLayer,
            seed: 0,
        }
        .build()
        .is_err());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(PolicySpec::Full.label(), "Full");
        assert!(PolicySpec::keyformer_default().label().contains("gumbel"));
        assert!(PolicySpec::Damped { alpha: 0.875 }
            .label()
            .contains("0.875"));
        assert!(PolicySpec::streaming_default().label().contains("4"));
        assert!(PolicySpec::DilatedWindow { dilation: 2 }
            .to_string()
            .contains("d=2"));
    }

    #[test]
    fn specs_round_trip_through_serde() {
        for spec in [
            PolicySpec::Full,
            PolicySpec::keyformer_default(),
            PolicySpec::Damped { alpha: 0.9 },
            PolicySpec::streaming_default(),
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }
}

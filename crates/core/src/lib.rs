//! # keyformer-core
//!
//! The primary contribution of the Keyformer paper (Adnan et al., MLSys 2024),
//! implemented from scratch: inference-time KV-cache reduction by retaining a small
//! recent window plus a set of *key tokens* selected by a Gumbel-regularized,
//! temperature-annealed score function.
//!
//! The crate is organised around three ideas:
//!
//! 1. [`cache::KvCache`] — the per-layer key/value store a decoder fills during the
//!    prompt phase and reads during token generation. Eviction means *compacting* a
//!    layer's slots down to a [`budget::CacheBudget`].
//! 2. [`policy::KvCachePolicy`] — the trait every cache-reduction strategy
//!    implements: it observes the unnormalized attention logits produced at each
//!    decode step and, when asked, returns the set of slots to retain.
//! 3. The policy zoo in [`policies`] — Full attention, Window / Dilated-window
//!    attention, key-token-only attention, H2O (heavy hitters), a damped-score
//!    variant (Figure 5), StreamingLLM-style attention sinks, and **Keyformer**
//!    itself.
//!
//! ```
//! use keyformer_core::budget::CacheBudget;
//! use keyformer_core::observation::{AttentionObservation, Phase};
//! use keyformer_core::policies::keyformer::{Keyformer, KeyformerConfig};
//! use keyformer_core::policy::KvCachePolicy;
//!
//! // A Keyformer policy with a 4-slot budget, 2 of which are a recent window.
//! let mut policy = Keyformer::new(KeyformerConfig::default().with_seed(7));
//! let budget = CacheBudget::new(4, 2);
//!
//! // Observe one decode step over a 6-token cache, then compact 6 -> 4.
//! let logits = [2.0, 0.1, 0.3, 1.5, 0.2, 0.4];
//! policy.observe(&AttentionObservation {
//!     layer: 0,
//!     head: 0,
//!     phase: Phase::Prompt,
//!     step: 0,
//!     total_steps: 8,
//!     logits: &logits,
//! });
//! let retained = policy.select_retained(0, logits.len(), &budget);
//! assert_eq!(retained.len(), 4);
//! // The recent window (slots 4 and 5) is always preserved.
//! assert!(retained.contains(&4) && retained.contains(&5));
//! ```
//!
//! Policies are usually constructed declaratively through [`spec::PolicySpec`],
//! which keeps experiment definitions serializable data:
//!
//! ```
//! use keyformer_core::budget::CacheBudgetSpec;
//! use keyformer_core::spec::PolicySpec;
//!
//! // Every entry in the policy zoo has a spec; specs build boxed policies.
//! for spec in [
//!     PolicySpec::Full,
//!     PolicySpec::Window,
//!     PolicySpec::h2o_default(),
//!     PolicySpec::streaming_default(),
//!     PolicySpec::keyformer_default(),
//! ] {
//!     let policy = spec.build()?;
//!     assert!(!policy.name().is_empty());
//! }
//!
//! // A budget spec scales with the prompt: keep 50% of prompt tokens, a tenth
//! // of them reserved for the most recent positions.
//! let budget = CacheBudgetSpec::new(0.5, 0.1)?.for_prompt_len(64);
//! assert_eq!(budget.capacity(), 32);
//! # Ok::<(), keyformer_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod adjustment;
pub mod block;
pub mod budget;
pub mod cache;
pub mod diagnostics;
pub mod observation;
pub mod policies;
pub mod policy;
pub mod prefix;
pub mod rotated;
pub mod spec;
pub mod temperature;

pub use accumulator::{ScoreAccumulator, ScoreScope};
pub use adjustment::LogitAdjustment;
pub use block::{BlockId, BlockPool, BlockPoolStats, OvercommitPolicy, SharedBlockPool};
pub use budget::{CacheBudget, CacheBudgetSpec};
pub use cache::{KvBlockMeta, KvCache, LayerKvCache};
pub use observation::{AttentionObservation, Phase};
pub use policies::full::FullAttention;
pub use policies::h2o::H2O;
pub use policies::keyformer::{Keyformer, KeyformerConfig};
pub use policies::streaming::StreamingLlm;
pub use policies::window::WindowAttention;
pub use policy::KvCachePolicy;
pub use prefix::{PrefixRegistry, PrefixRegistryStats, SharedPrefixRegistry};
pub use rotated::RotatedKeyCache;
pub use spec::PolicySpec;
pub use temperature::TemperatureSchedule;

/// Errors produced by cache and policy operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A cache budget or policy configuration was structurally invalid.
    InvalidConfig(String),
    /// A retained-slot set did not satisfy the compaction contract
    /// (sorted, unique, in-bounds, correct length).
    InvalidSelection(String),
    /// A strict [`block::BlockPool`] had no block left for an allocation.
    /// Chunked prefill treats this as "pause and resume once blocks free up";
    /// anywhere else it retires the request.
    PoolExhausted {
        /// Blocks allocated when the request failed.
        in_use: usize,
        /// The pool's block capacity.
        capacity: usize,
    },
    /// A retain/release/attach referenced a block id the pool does not
    /// currently have allocated. Surfaced as a `Result` (rather than a panic)
    /// so a serving-layer bookkeeping bug retires one request instead of
    /// taking the whole scheduler down.
    InvalidBlock {
        /// Raw id of the offending block.
        id: u32,
        /// The operation that rejected it (`"retain"`, `"release"`, ...).
        op: &'static str,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::InvalidSelection(msg) => write!(f, "invalid selection: {msg}"),
            CoreError::PoolExhausted { in_use, capacity } => write!(
                f,
                "block pool exhausted: {in_use} of {capacity} blocks in use"
            ),
            CoreError::InvalidBlock { id, op } => {
                write!(f, "{op} of block {id}, which is not currently allocated")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(CoreError::InvalidSelection("y".into())
            .to_string()
            .contains("y"));
    }
}

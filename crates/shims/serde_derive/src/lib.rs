//! Derive macros for the in-tree `serde` shim.
//!
//! With no network access there is no `syn`/`quote`, so these derives parse
//! the item declaration directly from the [`proc_macro::TokenStream`]. They
//! support exactly the shapes this workspace declares: non-generic structs
//! (named, tuple or unit) and non-generic enums whose variants are unit,
//! tuple or struct-like. Anything else produces a `compile_error!` naming the
//! limitation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Parsed shape of the deriving item.
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Derives the shim's `serde::Serialize` (lowering to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim's `serde::Deserialize` (rebuilding from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => gen(&name, &shape)
            .parse()
            .expect("serde shim derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn is_ident(tok: Option<&TokenTree>, text: &str) -> bool {
    matches!(tok, Some(TokenTree::Ident(id)) if id.to_string() == text)
}

fn is_punct(tok: Option<&TokenTree>, ch: char) -> bool {
    matches!(tok, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Advances `i` past any leading `#[...]` attributes (including doc comments)
/// and a `pub` / `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        if is_punct(toks.get(*i), '#') {
            *i += 2;
        } else if is_ident(toks.get(*i), "pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        } else {
            return;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected item name".into()),
    };
    i += 1;
    if is_punct(toks.get(i), '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    if is_ident(toks.get(i), "where") {
        return Err(format!(
            "serde shim derive: `where` clause on `{name}` is not supported"
        ));
    }

    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok((
                name,
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())?)),
            )),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::Struct(Fields::Tuple(tuple_arity(g.stream())))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok((name, Shape::Struct(Fields::Unit)))
            }
            _ => Err(format!("serde shim derive: malformed struct `{name}`")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("serde shim derive: malformed enum `{name}`")),
        },
        other => Err(format!(
            "serde shim derive: unsupported item kind `{other}`"
        )),
    }
}

/// Skips tokens until a comma at angle-bracket depth zero, consuming the comma.
fn skip_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        match &toks[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => {
                return Err(format!(
                    "serde shim derive: expected field name, found `{other}`"
                ))
            }
        }
        i += 1;
        if !is_punct(toks.get(i), ':') {
            return Err("serde shim derive: expected `:` after field name".into());
        }
        i += 1;
        skip_until_comma(&toks, &mut i);
    }
    Ok(names)
}

/// Counts the fields of a tuple struct/variant: elements separated by commas
/// at angle-bracket depth zero.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut depth = 0i32;
    let mut pending = false;
    for tok in &toks {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if pending {
                    arity += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(tuple_arity(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_until_comma(&toks, &mut i);
        variants.push((name, fields));
    }
    Ok(variants)
}

fn serialize_named(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(""))
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Named(fields)) => serialize_named(fields, |f| format!("&self.{f}")),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(""))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join("")
                        )
                    }
                    Fields::Named(fields) => {
                        let inner = serialize_named(fields, |f| f.to_string());
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), {inner})]),",
                            fields.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn deserialize_named(path: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value({source}.field({f:?})?)?,"))
        .collect();
    format!("::std::result::Result::Ok({path} {{ {} }})", inits.join(""))
}

fn deserialize_tuple(path: &str, arity: usize, source: &str) -> String {
    if arity == 1 {
        return format!(
            "::std::result::Result::Ok({path}(::serde::Deserialize::from_value({source})?))"
        );
    }
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
        .collect();
    format!(
        "{{ let __items = {source}.tuple({arity})?; \
           ::std::result::Result::Ok({path}({})) }}",
        items.join("")
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Struct(Fields::Named(fields)) => deserialize_named(name, fields, "__v"),
        Shape::Struct(Fields::Tuple(n)) => deserialize_tuple(name, *n, "__v"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(n) => Some(format!(
                        "{v:?} => {},",
                        deserialize_tuple(&format!("{name}::{v}"), *n, "__inner")
                    )),
                    Fields::Named(f) => Some(format!(
                        "{v:?} => {},",
                        deserialize_named(&format!("{name}::{v}"), f, "__inner")
                    )),
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                       \"unknown unit variant `{{__other}}` for enum `{name}`\"))), \
                   }}, \
                   ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                     let (__tag, __inner) = &__entries[0]; \
                     match __tag.as_str() {{ \
                       {} \
                       __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                         \"unknown variant `{{__other}}` for enum `{name}`\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                     \"invalid value of kind `{{}}` for enum `{name}`\", __other.kind()))), \
                 }}",
                unit_arms.join(""),
                tagged_arms.join("")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

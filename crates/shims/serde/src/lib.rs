//! Offline, in-tree stand-in for the subset of [`serde`] this workspace uses:
//! the [`Serialize`] / [`Deserialize`] traits and their derive macros.
//!
//! Unlike real serde's visitor architecture, this shim serializes through a
//! concrete JSON-like [`Value`] tree: `Serialize` lowers a type to a [`Value`]
//! and `Deserialize` rebuilds it from one. The companion `serde_json` shim
//! renders a [`Value`] to a JSON string and parses it back, which is all the
//! round-trip tests in this repository require. Enum representation follows
//! serde's externally-tagged default (`"Variant"` for unit variants,
//! `{"Variant": ...}` otherwise) so swapping in the real crates later keeps
//! the wire format stable.
//!
//! [`serde`]: https://docs.rs/serde

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree of values, the intermediate representation all
/// (de)serialization in this shim goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer, kept exact (not routed through `f64`).
    UInt(u64),
    /// A negative integer, kept exact.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`], returning [`Value::Null`] when the
    /// key is absent (so optional fields deserialize to `None`).
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null)),
            other => Err(Error::new(format!(
                "expected map with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The tuple elements of a [`Value::Seq`] of the expected arity.
    pub fn tuple(&self, arity: usize) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == arity => Ok(items),
            Value::Seq(items) => Err(Error::new(format!(
                "expected sequence of length {arity}, found length {}",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be lowered to a [`Value`].
pub trait Serialize {
    /// Lowers `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::new("negative value for unsigned integer"))?,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )+};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::new("integer out of range"))?,
                    Value::Int(n) => *n,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )+};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, exactly like real serde_json's
// `Value: Serialize + Deserialize`: callers that need to inspect JSON of an
// unknown shape (the kf-serve wire layer) parse straight into the tree.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.tuple(ARITY)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u8> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn field_lookup_treats_missing_as_null() {
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(m.field("a").unwrap(), &Value::UInt(1));
        assert_eq!(m.field("b").unwrap(), &Value::Null);
        assert!(Value::Null.field("a").is_err());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(String::from_value(&Value::UInt(1)).is_err());
    }
}

//! Offline, in-tree stand-in for the subset of [proptest] this workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), numeric range strategies,
//! [`collection::vec`], and the [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure seeds:
//! each test draws `cases` deterministic random inputs (seeded from the test's
//! name, so failures reproduce run-to-run) and reports the first failing case.
//! Swap in crates.io `proptest` via `[workspace.dependencies]` when network
//! access is available.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Per-test configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion, carrying its message.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Generates random values of `Self::Value` for one test case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
    )+};
}

range_strategies!(f32, f64, u8, u16, u32, u64, usize, i32, i64);

/// Strategies over collections.
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec`s of `len` elements (drawn from `len`), each drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range in collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A deterministic RNG for the named test, so failures reproduce run-to-run.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name picks a stable per-test seed.
    let mut hash = 0xcbf29ce484222325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($items)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn, then recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                left == right,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ),
        }
    };
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                left != right,
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ),
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated vectors respect both the length range and element range.
        #[test]
        fn vec_strategy_respects_ranges(
            values in collection::vec(-4.0f32..4.0, 8..96),
            n in 2usize..48,
        ) {
            prop_assert!((8..96).contains(&values.len()));
            prop_assert!(values.iter().all(|v| (-4.0..4.0).contains(v)));
            prop_assert!((2..48).contains(&n));
        }
    }

    proptest! {
        /// The default configuration applies when no header is given.
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed on case 1/")]
    fn failures_panic_with_case_number() {
        proptest! {
            #[allow(dead_code)]
            fn failing(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing();
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("alpha");
        let mut b = crate::test_rng("alpha");
        let mut c = crate::test_rng("beta");
        let strat = 0u64..1_000_000;
        let xs: Vec<u64> = (0..4).map(|_| strat.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..4).map(|_| strat.generate(&mut b)).collect();
        let zs: Vec<u64> = (0..4).map(|_| strat.generate(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}

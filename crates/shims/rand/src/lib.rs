//! Offline, in-tree stand-in for the subset of the [`rand`] crate API this
//! workspace uses: [`rngs::StdRng`] (seeded via [`SeedableRng::seed_from_u64`]),
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 generator the real crate uses, so seeded
//! streams differ from upstream `rand`, but the statistical quality is more
//! than sufficient for the moment-matching tests and synthetic data generation
//! in this repository. Swap this shim for crates.io `rand` by editing
//! `[workspace.dependencies]` in the root `Cargo.toml`.
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 32/64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed deterministically from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    ///
    /// Half-open float ranges never return the excluded upper bound.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniformly distributed sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    // 24 random bits → uniform in [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! float_ranges {
    ($($t:ty => $unit:ident),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let v = self.start + (self.end - self.start) * $unit(rng.next_u64());
                // Float rounding can land exactly on the excluded upper bound;
                // nudge back inside the half-open interval.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                start + (end - start) * $unit(rng.next_u64())
            }
        }
    )+};
}

float_ranges!(f32 => unit_f32, f64 => unit_f64);

macro_rules! int_ranges {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}

int_ranges!(u8, u16, u32, u64, usize);

macro_rules! signed_int_ranges {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )+};
}

signed_int_ranges!(i32, i64, isize);

/// Seedable pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++ seeded via
    /// SplitMix64 (David Blackman and Sebastiano Vigna, 2019).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let g: f32 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&g));
            let u: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(([] as [u8; 0]).choose(&mut rng).is_none());
    }
}

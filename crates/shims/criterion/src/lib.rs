//! Offline, in-tree stand-in for the subset of [Criterion] this workspace's
//! benches use: [`Criterion::benchmark_group`], per-group `sample_size` /
//! `warm_up_time` / `measurement_time`, [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a real (if simple) measurement harness, not a no-op: each benchmark
//! warms up for the configured duration, then collects `sample_size` timed
//! samples within the measurement budget and reports the median and mean
//! nanoseconds per iteration on stdout. There is no statistical analysis,
//! plotting or saved baselines — swap in crates.io `criterion` via
//! `[workspace.dependencies]` when network access is available.
//!
//! [Criterion]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measures `f`, reporting under this group's name and `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = qualify(&self.name, &id.into_benchmark_id());
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Measures `f` with an input value, reporting under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = qualify(&self.name, &id);
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn qualify(group: &str, id: &BenchmarkId) -> String {
    if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    }
}

/// Identifies one benchmark: a function name plus an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter rendered via
    /// [`Display`].
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both `&str`
/// and [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the requested number of iterations, recording total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm up and estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut per_iter = time_once(f, 1);
    while warm_start.elapsed() < warm_up_time {
        per_iter = time_once(f, 1).min(per_iter).max(Duration::from_nanos(1));
    }

    // Pick an iteration count per sample so all samples fit the budget.
    let per_sample = measurement_time / sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("benchmark time is never NaN"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label}: median {} / mean {} ({sample_size} samples x {iters} iters)",
        format_ns(median),
        format_ns(mean)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_compose() {
        assert_eq!(qualify("g", &BenchmarkId::new("f", 8)), "g/f/8");
        assert_eq!(qualify("", &"plain".into_benchmark_id()), "plain");
        assert_eq!(qualify("g", &BenchmarkId::from_parameter(4)), "g/4");
    }
}

//! Offline, in-tree stand-in for the subset of [`serde_json`] this workspace
//! uses: [`to_string`] and [`from_str`], implemented over the `serde` shim's
//! [`Value`] tree.
//!
//! Numbers print via Rust's shortest-round-trip formatting and parse back with
//! `str::parse`, so every finite `f64`/`u64`/`i64` survives a
//! serialize→parse round trip exactly.
//!
//! [`serde_json`]: https://docs.rs/serde_json

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float (JSON has no
/// representation for `NaN` or infinities).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the parsed value does not match
/// `T`'s expected shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // Rust's shortest-round-trip Display never uses scientific
            // notation, so integral floats (tiny or enormous) print with no
            // `.`; force one so the value parses back as a float.
            let start = out.len();
            let _ = write!(out, "{f}");
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            // A high surrogate must be followed by an escaped
                            // low surrogate; combine them (RFC 8259 §7).
                            if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(Error::new("unpaired UTF-16 high surrogate"));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::new("invalid UTF-16 low surrogate"));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                None => return Err(Error::new("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape starting at `at`.
    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            // Integers beyond 64 bits degrade to floats rather than erroring.
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid integer `{text}`")))
            })
        } else {
            text.parse::<u64>().map(Value::UInt).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid integer `{text}`")))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&0.5f32).unwrap(), "0.5");
        assert_eq!(from_str::<f32>("0.5").unwrap(), 0.5);
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn f32_values_survive_the_round_trip_exactly() {
        for x in [0.577_215_7f32, 1.282_549_8, -4.25, 1.0, 1e-7, 3.4e38] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&json).unwrap(), x, "json was {json}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        assert_eq!(from_str::<f64>(&json).unwrap(), 2.0);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let empty: Vec<u32> = from_str("[ ]").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn utf16_surrogate_pairs_parse() {
        // Escaped surrogate pair (RFC 8259 §7) and escaped BMP code point.
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "😀");
        assert_eq!(from_str::<String>(r#""\u00e9""#).unwrap(), "é");
        // Raw (unescaped) UTF-8 still passes straight through.
        assert_eq!(from_str::<String>("\"😀\"").unwrap(), "😀");
        // Unpaired or malformed surrogates are rejected.
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83d\u0041""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}

//! Property-based tests on the cache-policy invariants that every experiment relies
//! on: selections are valid (sorted, unique, in-bounds, right-sized), recent windows
//! are always retained, compaction keeps policies and caches consistent, and ROUGE
//! stays within [0, 1].

use keyformer::core::budget::CacheBudget;
use keyformer::core::observation::{AttentionObservation, Phase};
use keyformer::core::spec::PolicySpec;
use keyformer::text::rouge::rouge_scores;
use proptest::prelude::*;

fn all_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Full,
        PolicySpec::Window,
        PolicySpec::DilatedWindow { dilation: 1 },
        PolicySpec::KeyOnly,
        PolicySpec::h2o_default(),
        PolicySpec::Damped { alpha: 0.9 },
        PolicySpec::streaming_default(),
        PolicySpec::keyformer_default(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy returns a structurally valid selection of exactly the budgeted
    /// size, and always keeps the most recent slot.
    #[test]
    fn selections_satisfy_the_contract(
        logits in proptest::collection::vec(-4.0f32..4.0, 8..96),
        capacity in 2usize..48,
        recent in 1usize..8,
    ) {
        let live = logits.len();
        let budget = CacheBudget::new(capacity.min(live).max(2), recent.min(capacity.min(live).max(2)));
        for spec in all_policies() {
            let mut policy = spec.build().unwrap();
            policy.observe(&AttentionObservation {
                layer: 0,
                head: 0,
                phase: Phase::Generation,
                step: 1,
                total_steps: 16,
                logits: &logits,
            });
            let selection = policy.select_retained(0, live, &budget);
            // Structural contract.
            keyformer::core::cache::validate_selection(&selection, live).unwrap();
            if spec != PolicySpec::Full {
                prop_assert_eq!(selection.len(), budget.capacity().min(live));
            } else {
                prop_assert_eq!(selection.len(), live);
            }
            // Recency contract: the newest slot always survives (all policies keep
            // at least a window of 1, and full attention keeps everything). KeyOnly
            // has no recent window by design, and StreamingLLM spends its whole
            // budget on sink tokens when the budget is smaller than the sink count.
            let sinks_consume_budget =
                spec == PolicySpec::streaming_default() && budget.capacity() <= 4;
            if spec != PolicySpec::KeyOnly && !sinks_consume_budget {
                prop_assert!(
                    selection.contains(&(live - 1)),
                    "{}: newest slot evicted", spec.label()
                );
            }
        }
    }

    /// Compacting a policy with the selection it just produced never panics and
    /// subsequent selections remain valid for the reduced cache.
    #[test]
    fn compaction_keeps_policies_consistent(
        logits in proptest::collection::vec(-4.0f32..4.0, 16..64),
        rounds in 1usize..4,
    ) {
        for spec in all_policies() {
            let mut policy = spec.build().unwrap();
            let mut live = logits.len();
            for round in 0..rounds {
                let slice = &logits[..live];
                policy.observe(&AttentionObservation {
                    layer: 0,
                    head: 0,
                    phase: Phase::Generation,
                    step: round,
                    total_steps: 8,
                    logits: slice,
                });
                let budget = CacheBudget::new((live / 2).max(2), 1);
                let selection = policy.select_retained(0, live, &budget);
                keyformer::core::cache::validate_selection(&selection, live).unwrap();
                policy.compact(0, &selection);
                live = selection.len().max(2);
            }
        }
    }

    /// ROUGE scores are always within [0, 1] and exact matches score 1.
    #[test]
    fn rouge_is_bounded(
        candidate in proptest::collection::vec(0u32..200, 0..40),
        reference in proptest::collection::vec(0u32..200, 1..40),
    ) {
        let scores = rouge_scores(&candidate, &reference);
        for s in [scores.rouge1, scores.rouge2, scores.rouge_l] {
            prop_assert!((0.0..=1.0).contains(&s.f1));
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
        }
        let exact = rouge_scores(&reference, &reference);
        prop_assert!((exact.rouge1.f1 - 1.0).abs() < 1e-6);
        prop_assert!((exact.rouge_l.f1 - 1.0).abs() < 1e-6);
    }

    /// Cache budgets derived from a spec never exceed the prompt length by more than
    /// the minimum-capacity floor and always reserve at least one recent slot.
    #[test]
    fn budget_spec_is_well_formed(
        fraction in 0.05f64..1.0,
        ratio in 0.05f64..1.0,
        prompt_len in 1usize..4096,
    ) {
        let spec = keyformer::core::budget::CacheBudgetSpec::new(fraction, ratio).unwrap();
        let budget = spec.for_prompt_len(prompt_len);
        prop_assert!(budget.capacity() >= 1);
        prop_assert!(budget.recent_window() >= 1);
        prop_assert!(budget.recent_window() <= budget.capacity());
        prop_assert!(budget.capacity() <= prompt_len.max(4));
    }
}

//! Proof that steady-state decode on the workspace path performs **zero heap
//! allocations per token**.
//!
//! A counting wrapper around the system allocator is installed as the global
//! allocator for this test binary. After a request is admitted
//! (`Session::begin` reserves every monotone-growth buffer for the whole
//! request up front) and a few warm-up decode steps have filled the
//! fixed-capacity scratch buffers and crossed the first block boundary, the
//! counter is armed and several more decode steps run entirely inside one KV
//! block. The assertion is exact: not "few allocations", zero.
//!
//! The window deliberately avoids the two places the hot path *is* allowed to
//! allocate: block boundaries (a fresh KV block, its rotated-key entry and a
//! per-block `positions` reservation) and the stats collector (off here, as
//! in serving). Allocation-freedom is a property of the default
//! [`ForwardPath::Workspace`] only — the legacy path allocates per token by
//! design, which is what `BENCH_hotpath.json` quantifies.

// The GlobalAlloc trait is unsafe to implement; this thin counting wrapper
// delegates straight to the system allocator.
#![allow(unsafe_code)]

use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::model::session::Session;
use keyformer::model::workspace::ForwardPath;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper that counts allocation events (fresh allocations
/// and reallocations; frees are not counted) while [`COUNTING`] is set.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// This file holds exactly one test: the counter is process-global, so a
/// concurrently running sibling test would pollute the window.
#[test]
fn steady_state_workspace_decode_allocates_nothing() {
    let model = ModelFamily::Tiny.build(11);
    let policy = keyformer::core::spec::PolicySpec::Full.build().unwrap();
    let mut session = Session::new(&model, policy, None).with_forward_path(ForwardPath::Workspace);

    // One full 16-slot block of prompt; begin() reserves sequence and
    // per-slot attention scratch for the whole request.
    let prompt: Vec<u32> = (0..16).map(|i| (i * 7 + 3) % 128).collect();
    let config = GenerationConfig::new(14);
    session.begin(&prompt, &config).unwrap();
    while session.is_prefilling() {
        session.advance_prefill().unwrap();
    }

    // Warm-up: the first decode forward opens block 1 (an allowed boundary
    // allocation) and later steps settle every scratch buffer at its final
    // capacity.
    for _ in 0..4 {
        session.step().unwrap();
    }

    // Counted window: 8 decode steps, all appending into block 1
    // (slots 16..=31 — positions 20..=27 here).
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..8 {
        session.step().unwrap();
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        allocations, 0,
        "steady-state decode on the workspace path must not touch the \
         allocator; counted {allocations} allocation(s) over 8 steps"
    );

    // The request itself stayed healthy.
    while session.is_decoding() {
        session.step().unwrap();
    }
    let out = session.take_output().unwrap();
    assert_eq!(out.generated.len(), 14);
}

//! Arrival-triggered preemption (`ServerConfig::preempt_on_arrival`):
//!
//! 1. With the knob **on**, a high-priority arrival whose reservation does
//!    not fit immediately preempts a strictly-lower-priority running session
//!    instead of waiting for it to retire — and the victim, recomputed on
//!    re-admission, produces tokens identical to an uncontended solo run.
//! 2. With the knob **off** (the default), the same workload emits no
//!    `Preempted` event: arrivals wait for retirement, bit-for-bit as before.
//! 3. Equal priorities never trigger arrival preemption (strict `<` only),
//!    so same-priority traffic cannot livelock by evicting itself.

use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::serve::{Engine, EventKind, Request, RequestId, ServerConfig, SubmitOptions};

const MODEL_SEED: u64 = 41;

fn prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
        .collect()
}

/// A pool of `slots` token slots: sized so one unbudgeted request fits and
/// two do not, forcing arrival-time contention.
fn tight_config(slots: usize, preempt_on_arrival: bool) -> ServerConfig {
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    ServerConfig::new(PolicySpec::Full, None, slots * bytes_per_token)
        .with_block_size(4)
        .with_preempt_on_arrival(preempt_on_arrival)
}

fn request(id: u64, salt: u32, gen: usize) -> Request {
    Request::new(id, prompt(12, salt), GenerationConfig::new(gen)).with_unbudgeted()
}

/// The victim's tokens from an uncontended solo run.
fn solo_tokens(config: ServerConfig, id: u64, salt: u32, gen: usize) -> Vec<u32> {
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let mut engine = Engine::new(&model, config).unwrap();
    engine.submit(request(id, salt, gen)).unwrap();
    engine.run(10_000);
    assert!(engine.is_idle());
    engine.completions()[0].output.generated.clone()
}

/// Runs the contended workload: a low-priority victim decodes alone, then a
/// `priority`-level arrival lands mid-decode. Returns the drained events and
/// the completed engine.
fn contended_run(
    config: ServerConfig,
    arrival_priority: u8,
) -> (Vec<EventKind>, Vec<(u64, Vec<u32>)>) {
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let mut engine = Engine::new(&model, config).unwrap();
    engine.submit(request(1, 1, 8)).unwrap();
    // Admit the victim and let it decode a few tokens.
    for _ in 0..4 {
        engine.step();
    }
    assert_eq!(engine.running(), 1, "victim should be running mid-decode");
    engine
        .submit_with(
            request(2, 2, 8),
            SubmitOptions::new().with_priority(arrival_priority),
        )
        .unwrap();
    engine.run(10_000);
    assert!(engine.is_idle(), "contended workload drained");
    assert!(engine.failures().is_empty(), "no failures");
    let events = engine
        .drain_events()
        .iter()
        .map(|e| e.kind.clone())
        .collect();
    let completions = engine
        .completions()
        .iter()
        .map(|c| (c.id.raw(), c.output.generated.clone()))
        .collect();
    (events, completions)
}

fn preempted_count(events: &[EventKind]) -> usize {
    events
        .iter()
        .filter(|k| matches!(k, EventKind::Preempted))
        .count()
}

#[test]
fn high_priority_arrival_preempts_and_victim_recomputes_identically() {
    // 7 blocks of 4: one 5-block reservation fits, two cannot coexist.
    let config = tight_config(28, true);
    let (events, completions) = contended_run(config, 3);
    assert!(
        preempted_count(&events) > 0,
        "the arrival should have preempted the running victim"
    );
    // Both completed despite the contention.
    assert_eq!(completions.len(), 2);
    for (id, tokens) in &completions {
        let salt = *id as u32;
        assert_eq!(
            tokens,
            &solo_tokens(config, *id, salt, 8),
            "request {id}: preemption must not change a single token"
        );
    }
}

#[test]
fn default_configuration_never_preempts_on_arrival() {
    let config = tight_config(28, false);
    let (events, completions) = contended_run(config, 3);
    assert_eq!(
        preempted_count(&events),
        0,
        "with the knob off, arrivals wait for retirement"
    );
    assert_eq!(completions.len(), 2);
    // The victim retires first: it was never evicted.
    assert_eq!(completions[0].0, 1);
    for (id, tokens) in &completions {
        let salt = *id as u32;
        assert_eq!(tokens, &solo_tokens(config, *id, salt, 8));
    }
}

#[test]
fn equal_priority_arrivals_do_not_preempt() {
    let config = tight_config(28, true);
    let (events, completions) = contended_run(config, 0);
    assert_eq!(
        preempted_count(&events),
        0,
        "equal priority is not strictly lower: no arrival preemption"
    );
    assert_eq!(completions.len(), 2);
}

#[test]
fn cancelling_a_preempting_arrival_leaves_the_pool_clean() {
    let config = tight_config(28, true);
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let mut engine = Engine::new(&model, config).unwrap();
    engine.submit(request(1, 1, 8)).unwrap();
    for _ in 0..4 {
        engine.step();
    }
    engine
        .submit_with(request(2, 2, 8), SubmitOptions::new().with_priority(3))
        .unwrap();
    // Let the preemption land, then cancel the usurper.
    engine.step();
    assert!(engine.cancel(RequestId::new(2)));
    engine.run(10_000);
    assert!(engine.is_idle());
    let stats = engine.pool_stats();
    assert_eq!(stats.in_use, 0, "no leaked blocks");
    assert_eq!(stats.reserved, 0, "no leaked reservations");
    // The preempted victim still completed, token-identically.
    let tokens = engine
        .completions()
        .iter()
        .find(|c| c.id.raw() == 1)
        .map(|c| c.output.generated.clone())
        .expect("victim completed");
    assert_eq!(tokens, solo_tokens(config, 1, 1, 8));
}

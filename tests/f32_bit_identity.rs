//! f32-default bit-identity regression: the quantized KV storage added in this
//! PR must be invisible while `KvDtype::F32` (the default) is selected.
//!
//! The fingerprints below were captured from the pre-quantization build (PR 6
//! HEAD) and must never change for the f32 default: each one hashes every
//! observable output of a small serving run — generated tokens, per-layer
//! final cache slot counts and byte footprints — across the whole policy zoo.
//! A changed fingerprint means the dtype plumbing altered f32 numerics or
//! scheduling, which is exactly the regression this test exists to catch.

use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::serve::{Engine, Request, ServerConfig};

const MODEL_SEED: u64 = 23;
const PROMPT_LEN: usize = 12;
const GEN_TOKENS: usize = 6;
const REQUESTS: usize = 5;

/// FNV-1a over a byte stream: the same stable hash the prefix registry uses,
/// reimplemented here so the fingerprint does not depend on internal APIs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full policy zoo with the budgets the parallel-scaling experiment uses.
fn zoo() -> Vec<(&'static str, PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = CacheBudgetSpec::with_fraction(0.5).expect("valid fraction");
    vec![
        ("Full", PolicySpec::Full, None),
        ("Window", PolicySpec::Window, Some(budget)),
        (
            "Dilated",
            PolicySpec::DilatedWindow { dilation: 1 },
            Some(budget),
        ),
        ("KeyOnly", PolicySpec::KeyOnly, Some(budget)),
        ("H2O", PolicySpec::h2o_default(), Some(budget)),
        ("Damped", PolicySpec::Damped { alpha: 0.9 }, Some(budget)),
        (
            "StreamingLLM",
            PolicySpec::streaming_default(),
            Some(budget),
        ),
        ("Keyformer", PolicySpec::keyformer_default(), Some(budget)),
    ]
}

/// Runs one policy's workload to idle and hashes everything observable about
/// its completions.
fn run_fingerprint(policy: PolicySpec, budget: Option<CacheBudgetSpec>) -> u64 {
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    let pool_bytes = REQUESTS * (PROMPT_LEN + GEN_TOKENS + 8) * bytes_per_token;
    let config = ServerConfig::new(policy, budget, pool_bytes);
    let mut engine = Engine::new(&model, config).expect("config is valid");
    engine.record_events(false);
    for i in 0..REQUESTS {
        let salt = i as u32;
        let prompt: Vec<u32> = (0..PROMPT_LEN)
            .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
            .collect();
        engine
            .submit(Request::new(
                i as u64,
                prompt,
                GenerationConfig::new(GEN_TOKENS),
            ))
            .expect("roomy pool admits everything");
    }
    engine.run(100_000);
    let mut streams: Vec<(u64, String)> = engine
        .completions()
        .iter()
        .map(|c| (c.id.raw(), format!("{:?}", c.output)))
        .collect();
    streams.sort_unstable_by_key(|(id, _)| *id);
    assert_eq!(streams.len(), REQUESTS, "every request must complete");
    fnv1a(format!("{streams:?}").as_bytes())
}

#[test]
fn f32_default_zoo_fingerprints_match_pre_quantization_build() {
    // Captured from the pre-quantization build; see the module docs.
    let golden: &[(&str, u64)] = &[
        ("Full", 0x6b21_0739_a2de_a353),
        ("Window", 0x0591_bf9f_8995_f9a1),
        ("Dilated", 0xc930_8542_6d0d_aaa4),
        ("KeyOnly", 0xd6bd_5e02_dbbf_4d64),
        ("H2O", 0x473a_3f9f_f1e2_d78d),
        ("Damped", 0x473a_3f9f_f1e2_d78d),
        ("StreamingLLM", 0x597b_e3f6_143c_f7ba),
        ("Keyformer", 0x29f9_b0cf_ed58_54c4),
    ];
    let mut mismatches = Vec::new();
    for ((label, policy, budget), &(golden_label, golden_hash)) in zoo().into_iter().zip(golden) {
        assert_eq!(label, golden_label, "zoo and golden table out of sync");
        let actual = run_fingerprint(policy, budget);
        if actual != golden_hash {
            mismatches.push(format!("(\"{label}\", 0x{actual:016x}),"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "f32-default outputs diverged from the pre-quantization build:\n{}",
        mismatches.join("\n")
    );
}

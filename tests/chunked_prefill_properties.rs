//! Chunked-prefill properties: for every policy in the zoo, arming a prompt
//! with any chunk size and driving `advance_prefill` to completion, then
//! decoding, is token-identical to one-shot prefill — chunking is purely a
//! scheduling change, never a semantic one. Plus the mid-prefill edge cases:
//! the end-of-prompt eviction lands on the final chunk and must return blocks
//! to the shared pool at that instant, and an aborted mid-prompt prefill must
//! leak nothing.

use keyformer::core::block::SharedBlockPool;
use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::model::session::Session;
use proptest::prelude::*;

/// The whole policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn policy_zoo() -> Vec<(PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    vec![
        (PolicySpec::Full, None),
        (PolicySpec::Window, budget),
        (PolicySpec::DilatedWindow { dilation: 1 }, budget),
        (PolicySpec::KeyOnly, budget),
        (PolicySpec::h2o_default(), budget),
        (PolicySpec::Damped { alpha: 0.9 }, budget),
        (PolicySpec::streaming_default(), budget),
        (PolicySpec::keyformer_default(), budget),
    ]
}

fn synthetic_prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|i| (i as u32 * 11 + 3 + salt * 29) % 120)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunked `begin` + `advance_prefill` + decode produces the same tokens,
    /// cache shape and byte watermarks as one-shot prefill, for every policy
    /// and every chunk size (including chunks larger than the prompt).
    #[test]
    fn chunked_prefill_matches_one_shot_for_every_policy(
        prompt_len in 12usize..40,
        chunk in 1usize..12,
        gen_tokens in 2usize..6,
        seed in 0u64..500,
    ) {
        let model = ModelFamily::Tiny.build(23);
        let prompt = synthetic_prompt(prompt_len, 1);
        for (policy, budget) in policy_zoo() {
            let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed);
            let one_shot = Session::new(&model, policy.build().unwrap(), budget)
                .generate(&prompt, &config)
                .unwrap();
            let mut chunked = Session::new(&model, policy.build().unwrap(), budget)
                .with_prefill_chunk(chunk);
            chunked.begin(&prompt, &config).unwrap();
            prop_assert!(chunked.is_prefilling());
            prop_assert!(!chunked.is_decoding());
            let mut advances = 0usize;
            while chunked.is_prefilling() {
                let progress = chunked.advance_prefill().unwrap();
                prop_assert!(progress.processed >= 1 && progress.processed <= chunk);
                prop_assert!(!progress.stalled, "unbounded pools never stall");
                advances += 1;
            }
            prop_assert_eq!(advances, prompt_len.div_ceil(chunk));
            let mut tokens = Vec::new();
            while chunked.is_decoding() {
                tokens.push(chunked.step().unwrap().token);
            }
            let output = chunked.take_output().unwrap();
            prop_assert_eq!(&output.generated, &tokens);
            prop_assert!(
                output == one_shot,
                "{}: chunk {} diverged from one-shot prefill",
                policy.label(),
                chunk
            );
        }
    }

    /// Mid-prefill eviction edge case: the prompt fills the cache chunk by
    /// chunk, the end-of-prompt eviction fires inside the *final*
    /// `advance_prefill` call, and the blocks it empties are back in the shared
    /// pool the moment that call returns — not at retirement.
    #[test]
    fn final_chunk_eviction_returns_blocks_immediately(
        prompt_len in 16usize..48,
        chunk in 1usize..9,
    ) {
        const BLOCK: usize = 4;
        const LAYERS: usize = 2; // ModelFamily::Tiny
        let model = ModelFamily::Tiny.build(29);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let pool = SharedBlockPool::unbounded(BLOCK);
        let mut session = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
            pool.clone(),
        )
        .with_prefill_chunk(chunk);
        session
            .begin(&synthetic_prompt(prompt_len, 2), &GenerationConfig::new(2))
            .unwrap();
        while session.is_prefilling() {
            session.advance_prefill().unwrap();
        }
        // Mid-prefill the whole prompt was cached (the pool's high-water mark
        // sees the transient even though the final advance_prefill call evicts
        // before returning)...
        let peak_blocks = pool.stats().peak_in_use;
        prop_assert_eq!(peak_blocks, LAYERS * prompt_len.div_ceil(BLOCK));
        // ...and the final chunk's eviction shrank it to the budget capacity
        // before any decode step ran.
        let capacity = spec.for_prompt_len(prompt_len).capacity();
        prop_assert_eq!(pool.blocks_in_use(), LAYERS * capacity.div_ceil(BLOCK));
        prop_assert!(pool.blocks_in_use() < peak_blocks);
        // An aborted mid-prompt prefill leaks nothing.
        let mut aborted = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
            pool.clone(),
        )
        .with_prefill_chunk(chunk);
        aborted
            .begin(&synthetic_prompt(prompt_len, 3), &GenerationConfig::new(2))
            .unwrap();
        aborted.advance_prefill().unwrap();
        let with_two = pool.blocks_in_use();
        drop(aborted);
        prop_assert!(pool.blocks_in_use() < with_two);
        prop_assert_eq!(pool.blocks_in_use(), LAYERS * capacity.div_ceil(BLOCK));
    }
}

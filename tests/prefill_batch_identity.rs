//! Chunk-batched prefill identity: the GEMM-batched prompt path
//! (`ForwardPath::Workspace`, the default) must be *byte-identical* to the
//! token-at-a-time loop (`ForwardPath::Legacy`) — same generated tokens, same
//! cache shapes and byte watermarks, same attention statistics bits, same
//! pool counters and the same stall points against a dry strict pool — for
//! every policy in the zoo, both KV dtypes, any chunk size, and across the
//! sharing machinery (prefix attachment, mid-prefill forks, stall/resume).
//!
//! The batched path reorders the *schedule* (layer-major per chunk, bulk
//! appends, deferred policy-observation replay) but never the per-token
//! arithmetic; these tests are the contract that the reordering is
//! unobservable.

use keyformer::core::block::{OvercommitPolicy, SharedBlockPool};
use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::cache::KvDtype;
use keyformer::core::prefix::SharedPrefixRegistry;
use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::{GenerationConfig, GenerationOutput};
use keyformer::model::session::Session;
use keyformer::model::workspace::ForwardPath;
use proptest::prelude::*;

/// The whole policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn policy_zoo() -> Vec<(PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    vec![
        (PolicySpec::Full, None),
        (PolicySpec::Window, budget),
        (PolicySpec::DilatedWindow { dilation: 1 }, budget),
        (PolicySpec::KeyOnly, budget),
        (PolicySpec::h2o_default(), budget),
        (PolicySpec::Damped { alpha: 0.9 }, budget),
        (PolicySpec::streaming_default(), budget),
        (PolicySpec::keyformer_default(), budget),
    ]
}

fn synthetic_prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|i| (i as u32 * 11 + 3 + salt * 29) % 120)
        .collect()
}

/// Drives a session to completion through chunked prefill + decode.
fn finish(session: &mut Session<'_>) -> GenerationOutput {
    while session.is_prefilling() {
        session.advance_prefill().unwrap();
    }
    while session.is_decoding() {
        session.step().unwrap();
    }
    session.take_output().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Batched == sequential for every policy, both dtypes and any chunk
    /// size: generated stream, final cache shape, and the peak byte
    /// watermark (which on `u8` must see the f32-staged rows a
    /// quantize-on-seal collapses mid-chunk).
    #[test]
    fn batched_prefill_matches_sequential_across_zoo(
        prompt_len in 12usize..40,
        chunk in 1usize..12,
        gen_tokens in 2usize..6,
        seed in 0u64..500,
    ) {
        let model = ModelFamily::Tiny.build(31);
        let prompt = synthetic_prompt(prompt_len, 3);
        for dtype in [KvDtype::F32, KvDtype::U8] {
            for (policy, budget) in policy_zoo() {
                let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed);
                let mut sequential =
                    Session::with_dtype(&model, policy.build().unwrap(), budget, dtype)
                        .with_forward_path(ForwardPath::Legacy)
                        .with_prefill_chunk(chunk);
                sequential.begin(&prompt, &config).unwrap();
                let expected = finish(&mut sequential);
                let mut batched =
                    Session::with_dtype(&model, policy.build().unwrap(), budget, dtype)
                        .with_prefill_chunk(chunk);
                prop_assert_eq!(batched.forward_path(), ForwardPath::Workspace);
                batched.begin(&prompt, &config).unwrap();
                let actual = finish(&mut batched);
                prop_assert!(
                    actual == expected,
                    "{}/{:?}: chunk {} diverged from the sequential path",
                    policy.label(),
                    dtype,
                    chunk
                );
            }
        }
    }

    /// The deferred observation replay also reproduces the attention
    /// statistics stream bit-for-bit: same records, in the same order, with
    /// the same softmax bits and position tables.
    #[test]
    fn batched_prefill_replays_identical_attention_statistics(
        prompt_len in 10usize..30,
        chunk in 1usize..9,
    ) {
        let model = ModelFamily::Tiny.build(31);
        let prompt = synthetic_prompt(prompt_len, 4);
        let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        let config = GenerationConfig::new(3);
        let run = |path: ForwardPath| {
            let mut session = Session::new(
                &model,
                PolicySpec::keyformer_default().build().unwrap(),
                budget,
            )
            .with_forward_path(path)
            .with_prefill_chunk(chunk);
            session.enable_stats();
            session.begin(&prompt, &config).unwrap();
            let output = finish(&mut session);
            let records = format!("{:?}", session.stats().unwrap().records());
            (output, records)
        };
        let (seq_out, seq_records) = run(ForwardPath::Legacy);
        let (bat_out, bat_records) = run(ForwardPath::Workspace);
        prop_assert!(bat_out == seq_out);
        prop_assert_eq!(bat_records, seq_records);
    }

    /// Prefix attachment under the batched path: a donor registers its prompt
    /// blocks mid-chunk, an attacher resumes from the snapshot, and both
    /// match the sequential path bit-for-bit (including the pool's final
    /// accounting).
    #[test]
    fn batched_prefix_attach_matches_sequential(
        suffix_salt in 1u32..50,
        chunk in 1usize..10,
    ) {
        let shared = synthetic_prompt(16, 9);
        let mut full = shared.clone();
        full.extend(synthetic_prompt(24, suffix_salt).split_off(16));
        let model = ModelFamily::Tiny.build(33);
        let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        let config = GenerationConfig::new(4);
        let run = |path: ForwardPath| {
            let pool = SharedBlockPool::unbounded(4);
            let registry = SharedPrefixRegistry::new(&pool);
            let mk = |ctx: u64| {
                Session::with_pool(
                    &model,
                    PolicySpec::keyformer_default().build().unwrap(),
                    budget,
                    pool.clone(),
                )
                .with_forward_path(path)
                .with_prefill_chunk(chunk)
                .with_prefix_registry(registry.clone(), ctx)
            };
            let mut donor = mk(1);
            let donor_out = donor.generate(&full, &config).unwrap();
            let mut attacher = mk(1);
            let reused = attacher.begin_with_prefix(&full, &config).unwrap();
            let attacher_out = finish(&mut attacher);
            drop(donor);
            drop(attacher);
            (donor_out, reused, attacher_out, pool.blocks_in_use())
        };
        let expected = run(ForwardPath::Legacy);
        let actual = run(ForwardPath::Workspace);
        prop_assert!(actual.1 > 0, "the cached prefix must attach");
        prop_assert!(actual == expected, "attach flow diverged between paths");
    }

    /// Forking a session between two batched `advance_prefill` calls: both
    /// sides resume, and both match the sequential fork at the same point.
    #[test]
    fn batched_fork_mid_prefill_matches_sequential(
        prompt_len in 14usize..36,
        chunk in 2usize..8,
        gen_tokens in 2usize..5,
    ) {
        let model = ModelFamily::Tiny.build(34);
        let prompt = synthetic_prompt(prompt_len, 6);
        let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        let config = GenerationConfig::new(gen_tokens);
        let run = |path: ForwardPath| {
            let pool = SharedBlockPool::unbounded(4);
            let mut original = Session::with_pool(
                &model,
                PolicySpec::h2o_default().build().unwrap(),
                budget,
                pool.clone(),
            )
            .with_forward_path(path)
            .with_prefill_chunk(chunk);
            original.begin(&prompt, &config).unwrap();
            original.advance_prefill().unwrap();
            let mut fork = original.fork().unwrap();
            let a = finish(&mut original);
            let b = finish(&mut fork);
            drop(original);
            drop(fork);
            assert_eq!(pool.blocks_in_use(), 0, "forked blocks all returned");
            (a, b)
        };
        let (seq_a, seq_b) = run(ForwardPath::Legacy);
        let (bat_a, bat_b) = run(ForwardPath::Workspace);
        prop_assert!(seq_a == seq_b, "fork must continue identically");
        prop_assert!(bat_a == seq_a && bat_b == seq_b, "fork flow diverged");
    }
}

/// Stall/resume against a dry strict pool: the batched admission (one exact
/// block-need query + largest-fitting-prefix) must stop at exactly the token
/// the sequential per-token pre-flight stalled at, report the same progress
/// numbers, and resume to the same output once blocks free up.
#[test]
fn batched_stall_points_match_sequential_on_a_strict_pool() {
    let model = ModelFamily::Tiny.build(3);
    for chunk in [1usize, 3, 4, 7, 14] {
        let run = |path: ForwardPath| {
            // 2 layers x 4-slot blocks, 8 blocks total; a neighbour holds 4.
            let pool = SharedBlockPool::bounded(4, 8, OvercommitPolicy::Strict).unwrap();
            let mut blocker = Session::with_pool(
                &model,
                PolicySpec::Full.build().unwrap(),
                None,
                pool.clone(),
            );
            blocker
                .generate(&synthetic_prompt(6, 1), &GenerationConfig::new(1))
                .unwrap();
            let mut session = Session::with_pool(
                &model,
                PolicySpec::Full.build().unwrap(),
                None,
                pool.clone(),
            )
            .with_forward_path(path)
            .with_prefill_chunk(chunk);
            session
                .begin(&synthetic_prompt(14, 2), &GenerationConfig::new(2))
                .unwrap();
            // Drive to the stall, recording every progress report.
            let mut reports = Vec::new();
            loop {
                let p = session.advance_prefill().unwrap();
                reports.push((p.processed, p.remaining, p.ready, p.stalled));
                if p.stalled && p.processed == 0 {
                    break;
                }
            }
            drop(blocker);
            while session.is_prefilling() {
                let p = session.advance_prefill().unwrap();
                reports.push((p.processed, p.remaining, p.ready, p.stalled));
            }
            while session.is_decoding() {
                session.step().unwrap();
            }
            (reports, session.take_output().unwrap())
        };
        let expected = run(ForwardPath::Legacy);
        let actual = run(ForwardPath::Workspace);
        assert_eq!(
            actual, expected,
            "chunk {chunk}: stall progression diverged between paths"
        );
    }
}

/// Preempt-then-recompute: abort a half-done batched prefill (as a scheduler
/// preemption would), rerun it from scratch, and the recompute matches the
/// sequential path's output and leaks nothing.
#[test]
fn batched_preempt_then_recompute_matches_sequential() {
    let model = ModelFamily::Tiny.build(35);
    let prompt = synthetic_prompt(26, 8);
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    let config = GenerationConfig::new(4);
    let run = |path: ForwardPath| {
        let pool = SharedBlockPool::unbounded(4);
        let mut session = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            budget,
            pool.clone(),
        )
        .with_forward_path(path)
        .with_prefill_chunk(5);
        session.begin(&prompt, &config).unwrap();
        session.advance_prefill().unwrap();
        session.advance_prefill().unwrap();
        // Preemption: the scheduler drops the half-done prefill...
        session.reset();
        assert_eq!(pool.blocks_in_use(), 0, "preempted prefill leaked blocks");
        // ...and later recomputes the request from scratch.
        session.begin(&prompt, &config).unwrap();
        let out = finish(&mut session);
        drop(session);
        assert_eq!(pool.blocks_in_use(), 0);
        out
    };
    assert!(run(ForwardPath::Workspace) == run(ForwardPath::Legacy));
}

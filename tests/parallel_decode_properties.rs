//! Parallel-decode properties: the PR 6 worker pool must be an invisible
//! optimization. Across the whole policy zoo, with prefix sharing on and off,
//! under preemption pressure, with mixed priorities, deadlines and
//! cancellations, an engine running `decode_workers` ∈ {2, 4, 8} must be
//! *byte-identical* to the sequential engine in everything observable:
//!
//! 1. **Token/event/stats identity** — completions (tokens, cache footprints,
//!    latency telemetry), failures, the full event stream, `ServerStats`, the
//!    live pool counters (`in_use`, `reserved`, `shared_blocks`,
//!    `total_allocs`, `total_frees`) and the prefix-registry stats all match
//!    the 1-worker run exactly. Only the pool's transient high-water marks
//!    (`peak_in_use`, `peak_reserved`, `peak_shared_blocks`) may differ: a
//!    parallel round legitimately holds several sessions' decode transients
//!    at once.
//! 2. **Soak leak-freedom** — 100+ randomized schedules on a tight strict
//!    pool with sharing enabled (forcing preemption and copy-on-write forks)
//!    drain to an empty pool and registry every time, with every request
//!    retiring exactly once.
//! 3. **Cancel racing an in-flight step** — a `CancelSignal` fired from
//!    another thread at arbitrary points (including between a round's plan
//!    and commit) retires the request exactly once, returns its blocks, and
//!    never emits an event after the terminal one.

use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::serve::{
    Completion, Engine, Event, EventKind, FailedRequest, FailureReason, Request, RequestId,
    ServerConfig, ServerStats, SubmitOptions,
};
use proptest::prelude::*;

/// Worker counts the identity properties compare against the sequential run.
const PARALLEL_WORKERS: [usize; 3] = [2, 4, 8];

/// The whole policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn policy_zoo() -> Vec<(PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    vec![
        (PolicySpec::Full, None),
        (PolicySpec::Window, budget),
        (PolicySpec::DilatedWindow { dilation: 1 }, budget),
        (PolicySpec::KeyOnly, budget),
        (PolicySpec::h2o_default(), budget),
        (PolicySpec::Damped { alpha: 0.9 }, budget),
        (PolicySpec::streaming_default(), budget),
        (PolicySpec::keyformer_default(), budget),
    ]
}

/// `num` requests sharing a `prefix_len`-token prefix, each with a unique
/// suffix (so prefix sharing genuinely attaches when enabled).
fn shared_prefix_requests(
    num: usize,
    prefix_len: usize,
    total_len: usize,
    gen: usize,
    seed: u64,
) -> Vec<Request> {
    (0..num)
        .map(|i| {
            let mut p: Vec<u32> = (0..prefix_len)
                .map(|t| (t as u32 * 13 + 7 + seed as u32 * 3) % 120)
                .collect();
            p.extend(
                (prefix_len..total_len)
                    .map(|t| (t as u32 * 13 + 7 + (i as u32 + 1) * 31 + seed as u32 * 3) % 120),
            );
            let config = GenerationConfig::new(gen).with_top_k(16, 2.0, seed + i as u64);
            Request::new(i as u64, p, config)
        })
        .collect()
}

/// Everything observable about one finished run, minus the pool's transient
/// high-water marks (the one schedule-dependent quantity parallel decode is
/// allowed to change).
#[derive(Debug, Clone, PartialEq)]
struct RunFingerprint {
    completions: Vec<Completion>,
    failures: Vec<FailedRequest>,
    events: Vec<Event>,
    stats: ServerStats,
    /// `(in_use, reserved, shared_blocks, total_allocs, total_frees)`.
    pool: (usize, usize, usize, u64, u64),
    registry: Option<keyformer::core::prefix::PrefixRegistryStats>,
}

/// Runs one engine to idle and fingerprints it.
fn fingerprint(
    model: &keyformer::model::model::TransformerModel,
    config: ServerConfig,
    requests: &[Request],
) -> RunFingerprint {
    let mut engine = Engine::new(model, config).unwrap();
    for request in requests {
        engine.submit(request.clone()).unwrap();
    }
    engine.run(10_000);
    assert!(engine.is_idle(), "engine did not drain");
    let events = engine.drain_events();
    let pool = engine.pool_stats();
    RunFingerprint {
        completions: engine.completions().to_vec(),
        failures: engine.failures().to_vec(),
        events,
        stats: *engine.stats(),
        pool: (
            pool.in_use,
            pool.reserved,
            pool.shared_blocks,
            pool.total_allocs,
            pool.total_frees,
        ),
        registry: engine.registry_stats(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property 1 (the headline): every worker count is byte-identical to the
    /// sequential engine for every policy, with sharing off and on, both on a
    /// roomy pool and on a tight strict pool that forces preemption.
    #[test]
    fn parallel_decode_is_identical_across_the_zoo(
        total_len in 18usize..26,
        gen_tokens in 3usize..6,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(41);
        let bytes_per_token = model.empty_cache().bytes_per_token();
        for (policy, budget) in policy_zoo() {
            for sharing in [false, true] {
                // Roomy non-strict pool, and a tight strict pool small enough
                // that the third request's growth preempts a neighbour.
                for (pool_slots, strict) in [(160usize, false), (40usize, true)] {
                    let requests = shared_prefix_requests(3, 12, total_len, gen_tokens, seed);
                    let config =
                        ServerConfig::new(policy, budget, pool_slots * bytes_per_token)
                            .with_block_size(4)
                            .with_prefill_chunk(4)
                            .with_prefix_sharing(sharing)
                            .with_strict_pool(strict);
                    let label = format!(
                        "{} (sharing={sharing}, strict={strict})",
                        policy.label()
                    );
                    let sequential =
                        fingerprint(&model, config.with_decode_workers(1), &requests);
                    for workers in PARALLEL_WORKERS {
                        let parallel = fingerprint(
                            &model,
                            config.with_decode_workers(workers),
                            &requests,
                        );
                        prop_assert!(
                            parallel == sequential,
                            "{label}: {workers} workers diverged from sequential\n\
                             sequential: {sequential:?}\nparallel: {parallel:?}"
                        );
                    }
                }
            }
        }
    }

    /// Property 2: mixed-priority traffic with a deadline and a mid-flight
    /// cancellation stays identical at every worker count — the serialized
    /// plan/commit phases preserve admission order, deadline expiry and
    /// cancellation points exactly.
    #[test]
    fn mixed_traffic_is_identical_at_every_worker_count(
        num_requests in 4usize..6,
        base_len in 14usize..22,
        gen_tokens in 3usize..6,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(43);
        let bytes_per_token = model.empty_cache().bytes_per_token();
        let run = |workers: usize| {
            let config = ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                48 * bytes_per_token,
            )
            .with_block_size(4)
            .with_prefill_chunk(4)
            .with_decode_workers(workers);
            let mut engine = Engine::new(&model, config).unwrap();
            let mut submitted: Vec<RequestId> = Vec::new();
            for i in 0..num_requests {
                let prompt: Vec<u32> = (0..base_len + 2 * i)
                    .map(|t| (t as u32 * 13 + 5 + (i as u32 + 1) * 37 + seed as u32) % 120)
                    .collect();
                let gen = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed + i as u64);
                let options = SubmitOptions::new()
                    .with_priority((i % 3) as u8)
                    .with_deadline_steps(if i == 1 { 6 } else { usize::MAX / 2 });
                let handle = engine
                    .submit_with(Request::new(i as u64, prompt, gen), options)
                    .unwrap();
                submitted.push(handle.id());
            }
            let victim = *submitted.last().unwrap();
            let mut events: Vec<Event> = Vec::new();
            let mut cancelled = false;
            for step in 0..10_000 {
                if engine.is_idle() {
                    break;
                }
                engine.step();
                events.extend(engine.drain_events());
                // Deterministic mid-flight cancellation: same step boundary in
                // every run, so every worker count sees the same schedule.
                if step == 3 && !cancelled {
                    cancelled = engine.cancel(victim);
                    events.extend(engine.drain_events());
                }
            }
            assert!(engine.is_idle(), "engine did not drain");
            events.extend(engine.drain_events());
            let pool = engine.pool_stats();
            RunFingerprint {
                completions: engine.completions().to_vec(),
                failures: engine.failures().to_vec(),
                events,
                stats: *engine.stats(),
                pool: (
                    pool.in_use,
                    pool.reserved,
                    pool.shared_blocks,
                    pool.total_allocs,
                    pool.total_frees,
                ),
                registry: engine.registry_stats(),
            }
        };
        let sequential = run(1);
        prop_assert!(
            sequential.completions.len() + sequential.failures.len() == num_requests,
            "every request retires exactly once"
        );
        for workers in PARALLEL_WORKERS {
            let parallel = run(workers);
            prop_assert!(
                parallel == sequential,
                "{workers} workers diverged under mixed traffic\n\
                 sequential: {sequential:?}\nparallel: {parallel:?}"
            );
        }
    }
}

/// PR 7 fallback-removal regression: PR 6 serialized any decode round whose
/// plan contained a budgeted session still mapping shared blocks. With the
/// pool-level atomic fork probe that fallback is gone — so this schedule,
/// engineered to hit exactly that window, must fan out and stay identical.
/// Budgeting exactly the prompt means every session enters its *first* decode
/// round with its whole prefix still shared, and the round's own appends
/// trigger the evictions that copy-on-write-fork those blocks while the
/// workers are running.
#[test]
fn budgeted_sessions_still_sharing_at_decode_stay_identical() {
    let model = ModelFamily::Tiny.build(59);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    let budget = Some(CacheBudgetSpec::with_fraction(1.0).unwrap());
    let requests = shared_prefix_requests(4, 16, 20, 6, 59);
    let run = |workers: usize| {
        let config = ServerConfig::new(
            PolicySpec::keyformer_default(),
            budget,
            256 * bytes_per_token,
        )
        .with_block_size(4)
        .with_prefix_sharing(true)
        .with_decode_workers(workers);
        fingerprint(&model, config, &requests)
    };
    let sequential = run(1);
    assert!(
        sequential.stats.prefix_tokens_reused > 0,
        "the schedule must actually attach to the shared prefix"
    );
    assert_eq!(
        sequential.completions.len(),
        requests.len(),
        "every request completes"
    );
    for workers in PARALLEL_WORKERS {
        let parallel = run(workers);
        assert!(
            parallel == sequential,
            "{workers} workers diverged on budgeted-but-still-shared sessions\n\
             sequential: {sequential:?}\nparallel: {parallel:?}"
        );
    }
}

/// Property 3 (soak): 100 randomized schedules on a tight strict pool with
/// sharing enabled — the mix that forces preemption and copy-on-write forks —
/// drain to an empty pool and registry at the worker count under test
/// (`KF_DECODE_WORKERS`, default 4), with every request retiring exactly once.
#[test]
fn soak_tight_strict_pool_never_leaks() {
    let workers = ServerConfig::decode_workers_from_env().unwrap_or(4);
    let model = ModelFamily::Tiny.build(47);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    for seed in 0u64..100 {
        // Cheap deterministic schedule knobs derived from the seed.
        let num_requests = 3 + (seed % 2) as usize;
        let total_len = 18 + (seed % 7) as usize;
        let gen_tokens = 3 + (seed % 4) as usize;
        let pool_slots = 36 + (seed % 3) as usize * 4;
        let config = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            pool_slots * bytes_per_token,
        )
        .with_block_size(4)
        .with_prefill_chunk(4)
        .with_prefix_sharing(true)
        .with_strict_pool(true)
        .with_decode_workers(workers);
        let mut engine = Engine::new(&model, config).unwrap();
        let requests = shared_prefix_requests(num_requests, 12, total_len, gen_tokens, seed);
        for request in &requests {
            engine.submit(request.clone()).unwrap();
        }
        engine.run(10_000);
        assert!(engine.is_idle(), "seed {seed}: engine did not drain");
        assert_eq!(
            engine.completions().len() + engine.failures().len(),
            num_requests,
            "seed {seed}: every request retires exactly once"
        );
        // The only blocks (and, on a strict pool, reservations) still held
        // belong to the registry's deliberate pins: clearing it must drain
        // the pool to exactly empty.
        let registry = engine.prefix_registry().expect("sharing is on");
        registry.clear();
        assert_eq!(
            engine.pool().blocks_reserved(),
            0,
            "seed {seed}: reservation leaked after registry clear"
        );
        assert_eq!(
            engine.pool().blocks_in_use(),
            0,
            "seed {seed}: blocks leaked after registry clear: {:?}",
            engine.pool_stats()
        );
        assert_eq!(
            engine.pool_stats().total_allocs,
            engine.pool_stats().total_frees,
            "seed {seed}: alloc/free imbalance"
        );
    }
}

/// Property 4: a `CancelSignal` fired from another thread while the engine
/// steps — landing before a round, between its plan and commit, or after the
/// request already retired — always yields exactly-once retirement, a
/// well-formed stream with nothing after the terminal event, and a drained
/// pool.
#[test]
fn threaded_cancel_racing_a_parallel_step_retires_exactly_once() {
    let model = ModelFamily::Tiny.build(53);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    let workers = ServerConfig::decode_workers_from_env().unwrap_or(4);
    for delay_us in [
        0u64, 20, 50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600,
    ] {
        let config = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            96 * bytes_per_token,
        )
        .with_block_size(4)
        .with_prefill_chunk(4)
        .with_decode_workers(workers);
        let mut engine = Engine::new(&model, config).unwrap();
        let requests = shared_prefix_requests(3, 12, 20, 16, delay_us);
        let mut ids = Vec::new();
        for request in &requests {
            ids.push(engine.submit(request.clone()).unwrap().id());
        }
        let doomed = ids[1];
        let signal = engine.cancel_signal();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            signal.cancel(doomed);
        });
        engine.run(10_000);
        canceller.join().unwrap();
        // The signal may have landed after the engine drained: apply it the
        // way the next step would, then settle.
        engine.step();
        assert!(engine.is_idle(), "delay {delay_us}us: engine did not drain");
        let retirements = engine
            .completions()
            .iter()
            .filter(|c| c.id == doomed)
            .count()
            + engine.failures().iter().filter(|f| f.id == doomed).count();
        assert_eq!(
            retirements, 1,
            "delay {delay_us}us: doomed request retired {retirements} times"
        );
        // Whichever way the race went, the stream is well-formed: exactly one
        // terminal event and nothing after it.
        let events = engine.drain_events_for(doomed);
        let terminal_at = events
            .iter()
            .position(|e| e.kind.is_terminal())
            .expect("doomed request has a terminal event");
        assert_eq!(
            terminal_at,
            events.len() - 1,
            "delay {delay_us}us: events after the terminal: {events:?}"
        );
        if let Some(failure) = engine.failures().iter().find(|f| f.id == doomed) {
            assert!(
                matches!(failure.reason, FailureReason::Cancelled),
                "delay {delay_us}us: unexpected failure reason {failure:?}"
            );
            assert!(
                matches!(events[terminal_at].kind, EventKind::Cancelled),
                "delay {delay_us}us: terminal event is not Cancelled: {events:?}"
            );
        }
        // The survivors complete and the pool drains.
        for &id in &[ids[0], ids[2]] {
            assert!(
                engine.completions().iter().any(|c| c.id == id),
                "delay {delay_us}us: survivor {id} did not complete"
            );
        }
        assert_eq!(engine.pool().blocks_in_use(), 0, "delay {delay_us}us");
        assert_eq!(engine.pool().blocks_reserved(), 0, "delay {delay_us}us");
    }
}

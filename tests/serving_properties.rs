//! Serving-layer properties: for every policy in the zoo, pushing N requests
//! through the continuous-batching scheduler produces token-identical outputs to
//! running each request alone on a fresh `InferenceEngine` — interleaving decode
//! steps across sessions must never change what any one sequence generates.

use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::spec::PolicySpec;
use keyformer::model::engine::InferenceEngine;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::serve::{Request, Server, ServerConfig};
use proptest::prelude::*;

/// The whole policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn policy_zoo() -> Vec<(PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    vec![
        (PolicySpec::Full, None),
        (PolicySpec::Window, budget),
        (PolicySpec::DilatedWindow { dilation: 1 }, budget),
        (PolicySpec::KeyOnly, budget),
        (PolicySpec::h2o_default(), budget),
        (PolicySpec::Damped { alpha: 0.9 }, budget),
        (PolicySpec::streaming_default(), budget),
        (PolicySpec::keyformer_default(), budget),
    ]
}

fn synthetic_prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|i| (i as u32 * 13 + 5 + salt * 37) % 120)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serving N requests concurrently is observationally identical to running
    /// each alone: same tokens, same final cache shape, for every policy.
    #[test]
    fn serving_matches_sequential_generation_for_every_policy(
        num_requests in 2usize..5,
        base_len in 14usize..30,
        gen_tokens in 3usize..7,
        // Lower bound covers the largest unbudgeted projection
        // (base_len + 3 * (num_requests - 1) + gen_tokens - 1 < 48), so the
        // Full-attention baseline is always admissible and the no-failures
        // assertion below holds for every drawn case.
        pool_slots in 48usize..96,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(9);
        let bytes_per_token = model.empty_cache().bytes_per_token();
        for (policy, budget) in policy_zoo() {
            let requests: Vec<Request> = (0..num_requests)
                .map(|i| {
                    // Vary prompt lengths so sessions finish at different steps
                    // and the scheduler genuinely interleaves.
                    let prompt = synthetic_prompt(base_len + 3 * i, i as u32);
                    let config = GenerationConfig::new(gen_tokens)
                        .with_top_k(16, 2.0, seed + i as u64);
                    Request::new(i as u64, prompt, config)
                })
                .collect();
            // One-shot prefill and chunked prefill (3 tokens per step over a
            // finer-grained pool) must both be observationally identical to
            // sequential decoding — the block-backed cache and the resumable
            // prefill never change what any sequence generates.
            let base = ServerConfig::new(policy, budget, pool_slots * bytes_per_token)
                .with_block_size(4);
            for config in [base, base.with_prefill_chunk(3)] {
                let label = if config.prefill_chunk.is_some() {
                    format!("{} (chunked)", policy.label())
                } else {
                    policy.label()
                };
                let mut server = Server::new(&model, config).unwrap();
                for request in &requests {
                    server.submit(request.clone()).unwrap();
                }
                server.run(10_000);
                prop_assert!(server.is_idle(), "{label}: server did not drain");
                prop_assert!(
                    server.failures().is_empty(),
                    "{label}: unexpected failures"
                );
                prop_assert_eq!(server.completions().len(), num_requests);
                prop_assert!(
                    server.pool().blocks_in_use() == 0,
                    "{label}: retired requests leaked blocks"
                );
                for request in &requests {
                    let completion = server
                        .completions()
                        .iter()
                        .find(|c| c.id == request.id)
                        .expect("every request completes");
                    let mut engine =
                        InferenceEngine::new(&model, policy.build().unwrap(), budget);
                    let alone = engine
                        .try_generate(&request.prompt, &request.config)
                        .unwrap();
                    prop_assert!(
                        completion.output == alone,
                        "{label}: serving diverged from sequential for {}",
                        request.id
                    );
                }
            }
        }
    }

    /// The admission invariant holds under arbitrary pools: reserved projected
    /// bytes never exceed the pool, and every admissible request eventually
    /// completes in FIFO admission order.
    #[test]
    fn admission_never_overshoots_the_pool(
        num_requests in 1usize..6,
        prompt_len in 10usize..40,
        pool_slots in 8usize..64,
    ) {
        let model = ModelFamily::Tiny.build(13);
        let bytes_per_token = model.empty_cache().bytes_per_token();
        let pool = pool_slots * bytes_per_token;
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                pool,
            ),
        )
        .unwrap();
        for i in 0..num_requests {
            server
                .submit(Request::new(
                    i as u64,
                    synthetic_prompt(prompt_len, i as u32),
                    GenerationConfig::new(4),
                ))
                .unwrap();
        }
        while !server.is_idle() {
            server.step();
            prop_assert!(server.reserved_bytes() <= pool);
        }
        let retired = server.completions().len() + server.failures().len();
        prop_assert_eq!(retired, num_requests);
        let completed_ids: Vec<u64> =
            server.completions().iter().map(|c| c.id.raw()).collect();
        let mut sorted = completed_ids.clone();
        sorted.sort_unstable();
        // Equal-size FIFO requests must complete in submission order.
        prop_assert_eq!(completed_ids, sorted);
    }
}

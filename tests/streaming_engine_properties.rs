//! Streaming-engine properties, across the whole policy zoo:
//!
//! 1. **Stream/batch identity** — the token sequence a request's event stream
//!    surfaces (`FirstToken` then `Token`*) is bit-identical to the batch
//!    `Server::completions()` output for the same workload, for every policy,
//!    with and without prefix sharing. Streaming is an observation channel; it
//!    must never perturb scheduling or decoding.
//! 2. **Cancellation leak-freedom** — cancelling at every phase (queued,
//!    mid-prefill, mid-decode, preempted) immediately returns reservations and
//!    releases the session's blocks: once the engine is idle the pool holds
//!    nothing beyond the prefix registry's deliberate pins, and clearing the
//!    registry drains it to empty.
//! 3. **Event-stream well-formedness** — under mixed-priority traffic with
//!    deadlines and cancellations, every submitted request's stream starts
//!    with `Queued`, carries exactly one terminal event (and nothing after
//!    it), emits `FirstToken` before any `Token`, and numbers `Token` indices
//!    contiguously — even across preemption replays.

use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::serve::{
    Engine, Event, EventKind, FailureReason, Request, RequestId, Server, ServerConfig,
    SubmitOptions,
};
use proptest::prelude::*;

/// Worker-pool width these properties run the engine with: `KF_DECODE_WORKERS`
/// when set (CI runs the suite a second time at 4), sequential otherwise.
/// Every invariant here must hold at any width — parallel decode is an
/// invisible optimization.
fn decode_workers() -> usize {
    ServerConfig::decode_workers_from_env().unwrap_or(1)
}

/// The whole policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn policy_zoo() -> Vec<(PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    vec![
        (PolicySpec::Full, None),
        (PolicySpec::Window, budget),
        (PolicySpec::DilatedWindow { dilation: 1 }, budget),
        (PolicySpec::KeyOnly, budget),
        (PolicySpec::h2o_default(), budget),
        (PolicySpec::Damped { alpha: 0.9 }, budget),
        (PolicySpec::streaming_default(), budget),
        (PolicySpec::keyformer_default(), budget),
    ]
}

/// `num` requests sharing a `prefix_len`-token prefix, each with a unique
/// suffix (so prefix sharing genuinely attaches when enabled).
fn shared_prefix_requests(
    num: usize,
    prefix_len: usize,
    total_len: usize,
    gen: usize,
    seed: u64,
) -> Vec<Request> {
    (0..num)
        .map(|i| {
            let mut p: Vec<u32> = (0..prefix_len)
                .map(|t| (t as u32 * 13 + 7 + seed as u32 * 3) % 120)
                .collect();
            p.extend(
                (prefix_len..total_len)
                    .map(|t| (t as u32 * 13 + 7 + (i as u32 + 1) * 31 + seed as u32 * 3) % 120),
            );
            let config = GenerationConfig::new(gen).with_top_k(16, 2.0, seed + i as u64);
            Request::new(i as u64, p, config)
        })
        .collect()
}

/// Tokens surfaced by a request's event stream, in emission order.
fn streamed_tokens(events: &[Event]) -> Vec<u32> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FirstToken { token } => Some(token),
            EventKind::Token { token, .. } => Some(token),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property 1: the streamed token sequence of every request equals the
    /// batch `completions()` output of the PR 4 server, for every policy in
    /// the zoo, with and without prefix sharing.
    #[test]
    fn streamed_tokens_match_batch_completions_across_the_zoo(
        total_len in 18usize..30,
        gen_tokens in 3usize..6,
        chunk in 3usize..6,
        pool_slots in 72usize..120,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(31);
        let bytes_per_token = model.empty_cache().bytes_per_token();
        for (policy, budget) in policy_zoo() {
            for sharing in [false, true] {
                let requests = shared_prefix_requests(3, 12, total_len, gen_tokens, seed);
                let config = ServerConfig::new(policy, budget, pool_slots * bytes_per_token)
                    .with_block_size(4)
                    .with_prefill_chunk(chunk)
                    .with_prefix_sharing(sharing)
                    .with_decode_workers(decode_workers());
                let label = format!("{} (sharing={sharing})", policy.label());

                let mut server = Server::new(&model, config).unwrap();
                for request in &requests {
                    server.submit(request.clone()).unwrap();
                }
                server.run(10_000);
                prop_assert!(server.is_idle(), "{label}: server did not drain");
                prop_assert!(server.failures().is_empty(), "{label}: failures");

                let mut engine = Engine::new(&model, config).unwrap();
                for request in &requests {
                    engine.submit(request.clone()).unwrap();
                }
                engine.run(10_000);
                prop_assert!(engine.is_idle(), "{label}: engine did not drain");
                prop_assert!(engine.failures().is_empty(), "{label}: failures");
                let events = engine.drain_events();

                for request in &requests {
                    let batch = server
                        .completions()
                        .iter()
                        .find(|c| c.id == request.id)
                        .expect("batch completion exists");
                    let streamed = engine
                        .completions()
                        .iter()
                        .find(|c| c.id == request.id)
                        .expect("engine completion exists");
                    prop_assert!(
                        batch.output == streamed.output,
                        "{label}: engine diverged from batch server for {}",
                        request.id
                    );
                    let per_request: Vec<Event> = events
                        .iter()
                        .filter(|e| e.id == request.id)
                        .cloned()
                        .collect();
                    prop_assert!(
                        streamed_tokens(&per_request) == batch.output.generated,
                        "{label}: streamed tokens diverged from batch output for {}",
                        request.id
                    );
                    prop_assert!(
                        streamed.token_steps.len() == batch.output.generated.len(),
                        "{label}: token_steps does not cover the output"
                    );
                }
            }
        }
    }

    /// Property 2 (queued / mid-prefill / mid-decode): cancellation at any of
    /// these phases immediately returns the reservation, and once the engine
    /// is idle the pool holds nothing beyond the registry's deliberate pins —
    /// clearing the registry drains it to empty. With sharing off the pool
    /// returns exactly to its pre-submit state.
    #[test]
    fn cancellation_leaks_nothing_at_any_phase(
        // Suffix after the 12-token shared prefix stays longer than the
        // 3-token chunk, so the mid-prefill phase is real even when a prefix
        // attach skips the shared blocks.
        prompt_len in 20usize..28,
        gen_tokens in 4usize..8,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(33);
        let bytes_per_token = model.empty_cache().bytes_per_token();
        for sharing in [false, true] {
            let config = ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                256 * bytes_per_token,
            )
            .with_block_size(4)
            .with_prefill_chunk(3)
            .with_prefix_sharing(sharing)
            .with_decode_workers(decode_workers());
            let mut engine = Engine::new(&model, config).unwrap();
            let requests = shared_prefix_requests(4, 12, prompt_len, gen_tokens, seed);

            // A donor completes normally first, seeding the registry (when
            // sharing) so later cancellations also exercise attached prefixes.
            engine.submit(requests[0].clone()).unwrap();
            engine.run(10_000);
            prop_assert!(engine.is_idle());

            // Phase: queued — cancelled before any step runs it.
            let queued = engine.submit(requests[1].clone()).unwrap();
            prop_assert!(engine.cancel(queued.id()));
            prop_assert!(engine.is_idle());

            // Phase: mid-prefill — one 3-token chunk of the prompt has run.
            let prefills_before = engine.stats().prefills;
            let prefilling = engine.submit(requests[2].clone()).unwrap();
            engine.step();
            prop_assert!(engine.running() == 1);
            prop_assert!(
                engine.stats().prefills == prefills_before,
                "prefill must still be mid-flight for the phase to be real"
            );
            prop_assert!(engine.cancel(prefilling.id()));
            prop_assert!(engine.is_idle());
            prop_assert!(engine.pool().blocks_reserved() == 0, "reservation leaked");

            // Phase: mid-decode — cancel once the first token has streamed.
            let decoding = engine.submit(requests[3].clone()).unwrap();
            let mut saw_token = false;
            for _ in 0..10_000 {
                engine.step();
                if engine
                    .drain_events_for(decoding.id())
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::FirstToken { .. }))
                {
                    saw_token = true;
                    break;
                }
                prop_assert!(!engine.is_idle(), "request retired before its first token");
            }
            prop_assert!(saw_token);
            prop_assert!(engine.cancel(decoding.id()));
            prop_assert!(engine.is_idle());

            // Nothing leaked: reservations are zero and the only blocks still
            // held are the registry's deliberate pins; clearing the registry
            // drains the pool to empty (with sharing off it already is).
            prop_assert!(engine.pool().blocks_reserved() == 0, "reservation leaked");
            if let Some(registry) = engine.prefix_registry() {
                registry.clear();
            } else {
                prop_assert!(!sharing);
            }
            prop_assert!(
                engine.pool().blocks_in_use() == 0,
                "cancelled requests leaked blocks (sharing={sharing}): {:?}",
                engine.pool_stats()
            );
            // Every cancellation is visible as a Cancelled failure.
            let cancelled = engine
                .failures()
                .iter()
                .filter(|f| matches!(f.reason, FailureReason::Cancelled))
                .count();
            prop_assert!(cancelled == 3);
        }
    }

    /// Property 3: under mixed-priority traffic with a deadline, a mid-flight
    /// cancellation and (possibly) preemption, every request's event stream
    /// is well-formed: `Queued` first, exactly one terminal event and nothing
    /// after it, `FirstToken` before any `Token`, contiguous token indices.
    #[test]
    fn event_streams_are_well_formed_under_mixed_traffic(
        num_requests in 4usize..7,
        base_len in 14usize..24,
        gen_tokens in 3usize..7,
        pool_slots in 24usize..64,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(37);
        let bytes_per_token = model.empty_cache().bytes_per_token();
        let mut engine = Engine::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                pool_slots * bytes_per_token,
            )
            .with_block_size(4)
            .with_prefill_chunk(4)
            .with_decode_workers(decode_workers()),
        )
        .unwrap();
        let mut submitted: Vec<RequestId> = Vec::new();
        for i in 0..num_requests {
            let prompt: Vec<u32> = (0..base_len + 2 * i)
                .map(|t| (t as u32 * 13 + 5 + (i as u32 + 1) * 37 + seed as u32) % 120)
                .collect();
            let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed + i as u64);
            let options = SubmitOptions::new()
                .with_priority((i % 3) as u8)
                // One request carries a deadline it may or may not make.
                .with_deadline_steps(if i == 1 { 6 } else { usize::MAX / 2 });
            let handle = engine
                .submit_with(Request::new(i as u64, prompt, config), options)
                .unwrap();
            submitted.push(handle.id());
        }
        let victim = submitted[num_requests - 1];
        let mut cancelled_victim = false;
        let mut all_events: Vec<Event> = Vec::new();
        for step in 0..10_000 {
            if engine.is_idle() {
                break;
            }
            engine.step();
            all_events.extend(engine.drain_events());
            if step == 3 && !cancelled_victim {
                cancelled_victim = engine.cancel(victim);
                all_events.extend(engine.drain_events());
            }
        }
        prop_assert!(engine.is_idle(), "engine did not drain");
        all_events.extend(engine.drain_events());
        prop_assert!(
            engine.completions().len() + engine.failures().len() == num_requests,
            "every request retires exactly once"
        );
        for &id in &submitted {
            let events: Vec<&Event> = all_events.iter().filter(|e| e.id == id).collect();
            prop_assert!(!events.is_empty(), "{id}: no events");
            prop_assert!(
                events[0].kind == EventKind::Queued,
                "{id}: stream must start Queued: {events:?}"
            );
            let terminals = events.iter().filter(|e| e.kind.is_terminal()).count();
            prop_assert!(terminals == 1, "{id}: {terminals} terminal events: {events:?}");
            prop_assert!(
                events.last().unwrap().kind.is_terminal(),
                "{id}: events after the terminal: {events:?}"
            );
            let mut first_token_seen = false;
            let mut next_index = 1;
            for e in &events {
                match &e.kind {
                    EventKind::FirstToken { .. } => {
                        prop_assert!(!first_token_seen, "{id}: duplicate FirstToken");
                        first_token_seen = true;
                    }
                    EventKind::Token { index, .. } => {
                        prop_assert!(first_token_seen, "{id}: Token before FirstToken");
                        prop_assert!(*index == next_index, "{id}: index gap: {events:?}");
                        next_index += 1;
                    }
                    _ => {}
                }
            }
            // Completed requests surfaced every output token exactly once.
            if let Some(completion) = engine.completions().iter().find(|c| c.id == id) {
                let owned: Vec<Event> = events.iter().map(|e| (*e).clone()).collect();
                prop_assert!(
                    streamed_tokens(&owned) == completion.output.generated,
                    "{id}: streamed tokens diverged from the completion"
                );
            }
        }
        // The pool drains completely (sharing is off here).
        prop_assert!(engine.pool().blocks_in_use() == 0);
        prop_assert!(engine.pool().blocks_reserved() == 0);
    }
}

/// Deterministic preempted-phase cancellation: the dry-strict-pool scenario
/// preempts the young decoder; cancelling it while re-queued must leak
/// nothing and leave the survivor to finish normally.
#[test]
fn cancelling_a_preempted_request_leaks_nothing() {
    let model = ModelFamily::Tiny.build(17);
    let bytes = model.empty_cache().bytes_per_token();
    let budget = CacheBudgetSpec::new(0.5, 0.3).unwrap();
    let mut engine = Engine::new(
        &model,
        ServerConfig::new(PolicySpec::keyformer_default(), Some(budget), 28 * bytes)
            .with_block_size(4)
            .with_prefill_chunk(4)
            .with_strict_pool(true)
            .with_decode_workers(decode_workers()),
    )
    .unwrap();
    engine
        .submit(Request::new(
            0,
            (0..16).map(|t| (t * 13 + 5) % 120).collect(),
            GenerationConfig::new(24),
        ))
        .unwrap();
    engine
        .submit(Request::new(
            1,
            (0..24).map(|t| (t * 13 + 22) % 120).collect(),
            GenerationConfig::new(4),
        ))
        .unwrap();
    let mut preempted_id = None;
    for _ in 0..2_000 {
        if engine.is_idle() {
            break;
        }
        engine.step();
        if preempted_id.is_none() {
            preempted_id = engine
                .drain_events()
                .iter()
                .find(|e| e.kind == EventKind::Preempted)
                .map(|e| e.id);
            if let Some(id) = preempted_id {
                // The request sits in the queue, preempted: cancel it there.
                assert!(engine.cancel(id), "preempted request not cancellable");
            }
        }
    }
    let preempted_id = preempted_id.expect("scenario must preempt");
    assert!(engine.is_idle(), "engine did not drain");
    assert_eq!(engine.completions().len(), 1, "the survivor completes");
    assert_ne!(engine.completions()[0].id, preempted_id);
    let cancelled: Vec<_> = engine
        .failures()
        .iter()
        .filter(|f| matches!(f.reason, FailureReason::Cancelled))
        .collect();
    assert_eq!(cancelled.len(), 1);
    assert_eq!(cancelled[0].id, preempted_id);
    assert_eq!(engine.pool().blocks_in_use(), 0, "preempted cancel leaked");
    assert_eq!(engine.pool().blocks_reserved(), 0);
    assert_eq!(engine.stats().cancelled, 1);
}

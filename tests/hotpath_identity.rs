//! Workspace-path ≡ legacy-path byte-identity across the whole configuration
//! space the serving stack exercises.
//!
//! PR 8 rewrote the per-token forward pass around a reusable
//! [`keyformer::model::workspace::ForwardWorkspace`] (scratch buffers, cached
//! RoPE key rotations, fused block-row iteration) and made it the session
//! default; the original allocating path stays callable as
//! [`ForwardPath::Legacy`]. The optimization's contract is that the two paths
//! are *byte-identical* — same tokens, same logits, same cache trajectory —
//! for every policy in the zoo, both KV storage dtypes, top-k sampling, and
//! with copy-on-write prefix sharing in the mix (where compaction inside
//! shared blocks must invalidate the rotated-key cache via block
//! generations). These tests pin that contract.

use keyformer::core::block::SharedBlockPool;
use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::cache::KvDtype;
use keyformer::core::prefix::{policy_context, SharedPrefixRegistry};
use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::model::session::Session;
use keyformer::model::workspace::ForwardPath;
use proptest::prelude::*;

/// The whole policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn policy_zoo() -> Vec<(PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    vec![
        (PolicySpec::Full, None),
        (PolicySpec::Window, budget),
        (PolicySpec::DilatedWindow { dilation: 1 }, budget),
        (PolicySpec::KeyOnly, budget),
        (PolicySpec::h2o_default(), budget),
        (PolicySpec::Damped { alpha: 0.9 }, budget),
        (PolicySpec::streaming_default(), budget),
        (PolicySpec::keyformer_default(), budget),
    ]
}

fn synthetic_prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|i| (i as u32 * 13 + 5 + salt * 37) % 120)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Zoo × dtype: a workspace-path generation is byte-identical to the
    /// legacy path's — the full [`GenerationOutput`] (tokens, per-step cache
    /// sizes, peak bytes), not just the token stream. Top-k sampling makes the
    /// comparison sensitive to the exact logit bits: one ULP of divergence
    /// reorders candidates and the streams split.
    #[test]
    fn workspace_path_is_byte_identical_across_zoo_and_dtypes(
        prompt_len in 18usize..40,
        gen_tokens in 4usize..10,
        seed in 0u64..1_000,
        salt in 0u32..8,
    ) {
        let model = ModelFamily::Tiny.build(37);
        let prompt = synthetic_prompt(prompt_len, salt);
        let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed);
        for (policy, budget) in policy_zoo() {
            for dtype in [KvDtype::F32, KvDtype::U8] {
                let legacy = Session::with_dtype(
                    &model, policy.build().unwrap(), budget, dtype,
                ).with_forward_path(ForwardPath::Legacy)
                    .generate(&prompt, &config).unwrap();
                let workspace = Session::with_dtype(
                    &model, policy.build().unwrap(), budget, dtype,
                ).with_forward_path(ForwardPath::Workspace)
                    .generate(&prompt, &config).unwrap();
                prop_assert!(
                    legacy == workspace,
                    "{} @ {dtype:?}: workspace path diverged from legacy",
                    policy.label()
                );
            }
        }
    }

    /// Prefix sharing on: a workspace-path session that attaches to blocks a
    /// legacy-path donor registered generates exactly what a legacy cold start
    /// does — and vice versa. Attached blocks arrive with foreign generations,
    /// and budgeted policies compact *inside* them mid-decode, so this is the
    /// rotated-key cache's invalidation logic under fire.
    #[test]
    fn workspace_path_is_byte_identical_under_prefix_sharing(
        shared_len in 12usize..24,
        gen_tokens in 3usize..7,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(37);
        let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed);
        let shared = synthetic_prompt(shared_len, 1);
        for (policy, budget) in policy_zoo() {
            for (donor_path, attach_path) in [
                (ForwardPath::Legacy, ForwardPath::Workspace),
                (ForwardPath::Workspace, ForwardPath::Legacy),
            ] {
                let pool = SharedBlockPool::unbounded(4);
                let registry = SharedPrefixRegistry::new(&pool);
                let context = policy_context(&policy);

                let mut donor_prompt = shared.clone();
                donor_prompt.extend(synthetic_prompt(8, 2).iter().map(|t| t + 1));
                let mut attach_prompt = shared.clone();
                attach_prompt.extend(synthetic_prompt(8, 3).iter().map(|t| t + 2));

                let mut donor = Session::with_pool(
                    &model, policy.build().unwrap(), budget, pool.clone(),
                ).with_prefix_registry(registry.clone(), context)
                    .with_forward_path(donor_path);
                donor.generate(&donor_prompt, &config).unwrap();

                let mut attacher = Session::with_pool(
                    &model, policy.build().unwrap(), budget, pool.clone(),
                ).with_prefix_registry(registry.clone(), context)
                    .with_forward_path(attach_path);
                attacher.begin_with_prefix(&attach_prompt, &config).unwrap();
                while attacher.is_decoding() {
                    attacher.step().unwrap();
                }
                let attached = attacher.take_output().unwrap();

                let cold = Session::with_pool(
                    &model, policy.build().unwrap(), budget, pool.clone(),
                ).with_forward_path(ForwardPath::Legacy)
                    .generate(&attach_prompt, &config).unwrap();
                prop_assert!(
                    attached == cold,
                    "{}: {attach_path:?} attacher onto a {donor_path:?} donor diverged from a legacy cold start",
                    policy.label()
                );
            }
        }
    }

    /// A forked workspace session (cloned rotated-key caches over shared
    /// blocks) continues exactly like its donor would have, and the donor is
    /// undisturbed — on both paths.
    #[test]
    fn forked_workspace_sessions_decode_identically(
        prompt_len in 18usize..30,
        gen_tokens in 4usize..8,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(37);
        let prompt = synthetic_prompt(prompt_len, 5);
        let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed);
        for (policy, budget) in policy_zoo() {
            for path in [ForwardPath::Legacy, ForwardPath::Workspace] {
                let pool = SharedBlockPool::unbounded(4);
                let mut donor = Session::with_pool(
                    &model, policy.build().unwrap(), budget, pool.clone(),
                ).with_forward_path(path);
                donor.begin(&prompt, &config).unwrap();
                while donor.is_prefilling() {
                    donor.advance_prefill().unwrap();
                }
                donor.step().unwrap();
                let mut fork = donor.fork().unwrap();
                while donor.is_decoding() {
                    donor.step().unwrap();
                }
                while fork.is_decoding() {
                    fork.step().unwrap();
                }
                let donor_out = donor.take_output().unwrap();
                let fork_out = fork.take_output().unwrap();
                prop_assert!(
                    donor_out == fork_out,
                    "{} @ {path:?}: fork diverged from its donor",
                    policy.label()
                );
            }
        }
    }
}

//! Prefix-sharing and copy-on-write properties: attaching to cached prefix
//! blocks, forking sessions, evicting inside shared blocks, preempting
//! mid-prefill and evicting registry entries under a live reader must all be
//! invisible in the generated tokens — for every policy in the zoo — and must
//! never leak or corrupt pool blocks.

use keyformer::core::block::SharedBlockPool;
use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::prefix::{policy_context, SharedPrefixRegistry};
use keyformer::core::spec::PolicySpec;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::model::session::Session;
use keyformer::serve::{Request, Server, ServerConfig};
use proptest::prelude::*;

/// The whole policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn policy_zoo() -> Vec<(PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    vec![
        (PolicySpec::Full, None),
        (PolicySpec::Window, budget),
        (PolicySpec::DilatedWindow { dilation: 1 }, budget),
        (PolicySpec::KeyOnly, budget),
        (PolicySpec::h2o_default(), budget),
        (PolicySpec::Damped { alpha: 0.9 }, budget),
        (PolicySpec::streaming_default(), budget),
        (PolicySpec::keyformer_default(), budget),
    ]
}

fn synthetic_prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|i| (i as u32 * 13 + 5 + salt * 37) % 120)
        .collect()
}

/// A prompt sharing its first `shared` tokens with `synthetic_prompt(_, salt)`
/// and unique beyond.
fn suffixed_prompt(shared: usize, total: usize, salt: u32, suffix_salt: u32) -> Vec<u32> {
    let mut p = synthetic_prompt(shared, salt);
    p.extend(
        (shared..total).map(|i| (i as u32 * 13 + 5 + salt * 37 + (suffix_salt + 1) * 29) % 120),
    );
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A session that attaches to a registered prefix generates exactly the
    /// tokens a cold start does, for every policy in the zoo — the registry's
    /// policy snapshots carry accumulated scores and RNG position across the
    /// skipped forwards.
    #[test]
    fn prefix_attached_sessions_match_cold_starts_across_the_zoo(
        shared_len in 9usize..24,
        total_len in 26usize..36,
        gen_tokens in 3usize..7,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(31);
        for (policy, budget) in policy_zoo() {
            let pool = SharedBlockPool::unbounded(4);
            let registry = SharedPrefixRegistry::new(&pool);
            let context = policy_context(&policy);
            let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed);
            let donor_prompt = suffixed_prompt(shared_len, total_len, 1, 0);
            let attach_prompt = suffixed_prompt(shared_len, total_len, 1, 7);

            // Donor registers while generating; registration must not perturb it.
            let mut donor = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            ).with_prefix_registry(registry.clone(), context);
            let donor_out = donor.generate(&donor_prompt, &config).unwrap();
            let cold_donor = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            ).generate(&donor_prompt, &config).unwrap();
            prop_assert!(donor_out == cold_donor, "{}: registration perturbed the donor", policy.label());

            // Attacher reuses the shared prefix blocks and matches a cold run.
            let mut attacher = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            ).with_prefix_registry(registry.clone(), context);
            let reused = attacher.begin_with_prefix(&attach_prompt, &config).unwrap();
            prop_assert!(reused == shared_len / 4 * 4, "{}: expected a full-block attach, reused {}", policy.label(), reused);
            while attacher.is_decoding() {
                attacher.step().unwrap();
            }
            let attached_out = attacher.take_output().unwrap();
            let cold_out = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            ).generate(&attach_prompt, &config).unwrap();
            prop_assert!(
                attached_out == cold_out,
                "{}: attached generation diverged from cold start", policy.label()
            );

            // An eviction inside the shared prefix (budgeted policies compact
            // into attached blocks) must not have corrupted the registry: a
            // second attacher still matches its own cold start.
            let second_prompt = suffixed_prompt(shared_len, total_len, 1, 13);
            let mut second = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            ).with_prefix_registry(registry.clone(), context);
            second.begin_with_prefix(&second_prompt, &config).unwrap();
            while second.is_decoding() {
                second.step().unwrap();
            }
            let second_out = second.take_output().unwrap();
            let second_cold = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            ).generate(&second_prompt, &config).unwrap();
            prop_assert!(
                second_out == second_cold,
                "{}: shared blocks were corrupted by a previous attacher's eviction", policy.label()
            );

            // Dropping every session and clearing the registry drains the pool.
            drop(donor);
            drop(attacher);
            drop(second);
            registry.clear();
            prop_assert!(pool.blocks_in_use() == 0, "{}: leaked blocks", policy.label());
        }
    }

    /// Forking a session at any point of its decode yields a fork that
    /// finishes exactly like the original, for every policy — and the two
    /// sides never corrupt each other through the CoW-shared blocks.
    #[test]
    fn forked_sessions_match_their_original_across_the_zoo(
        prompt_len in 16usize..30,
        gen_tokens in 4usize..8,
        fork_at in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let model = ModelFamily::Tiny.build(33);
        for (policy, budget) in policy_zoo() {
            let pool = SharedBlockPool::unbounded(4);
            let config = GenerationConfig::new(gen_tokens).with_top_k(16, 2.0, seed);
            let prompt = synthetic_prompt(prompt_len, 3);
            let reference = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            ).generate(&prompt, &config).unwrap();

            let mut original = Session::with_pool(
                &model, policy.build().unwrap(), budget, pool.clone(),
            );
            original.begin(&prompt, &config).unwrap();
            for _ in 0..fork_at.min(gen_tokens.saturating_sub(1)) {
                original.step().unwrap();
            }
            let mut fork = original.fork().unwrap();
            // Interleave the two decodes so CoW writes genuinely overlap.
            loop {
                let mut progressed = false;
                if original.is_decoding() {
                    original.step().unwrap();
                    progressed = true;
                }
                if fork.is_decoding() {
                    fork.step().unwrap();
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            let a = original.take_output().unwrap();
            let b = fork.take_output().unwrap();
            prop_assert!(a == reference, "{}: original diverged after forking", policy.label());
            prop_assert!(b == reference, "{}: fork diverged from original", policy.label());
            drop(original);
            drop(fork);
            prop_assert!(pool.blocks_in_use() == 0, "{}: leaked blocks", policy.label());
        }
    }
}

/// Registry eviction while a reader is attached: the reader keeps decoding
/// correctly from its own refcounts, later attachments simply miss.
#[test]
fn registry_eviction_under_a_live_reader_is_safe() {
    let model = ModelFamily::Tiny.build(35);
    let pool = SharedBlockPool::unbounded(4);
    let registry = SharedPrefixRegistry::new(&pool);
    let spec = PolicySpec::keyformer_default();
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    let context = policy_context(&spec);
    let config = GenerationConfig::new(6);
    let prompt = suffixed_prompt(16, 28, 5, 0);
    let reference = Session::with_pool(&model, spec.build().unwrap(), budget, pool.clone())
        .generate(&prompt, &config)
        .unwrap();

    let mut donor = Session::with_pool(&model, spec.build().unwrap(), budget, pool.clone())
        .with_prefix_registry(registry.clone(), context);
    donor.generate(&prompt, &config).unwrap();

    // Reader attaches mid-prefill (chunked), then the registry is emptied
    // under it.
    let reader_prompt = suffixed_prompt(16, 28, 5, 3);
    let mut reader = Session::with_pool(&model, spec.build().unwrap(), budget, pool.clone())
        .with_prefix_registry(registry.clone(), context)
        .with_prefill_chunk(4);
    let reused = reader.begin_with_prefix(&reader_prompt, &config).unwrap();
    assert_eq!(reused, 16);
    reader.advance_prefill().unwrap();
    registry.clear();
    assert!(registry.is_empty());
    while reader.is_prefilling() {
        reader.advance_prefill().unwrap();
    }
    while reader.is_decoding() {
        reader.step().unwrap();
    }
    let reader_out = reader.take_output().unwrap();
    let reader_cold = Session::with_pool(&model, spec.build().unwrap(), budget, pool.clone())
        .generate(&reader_prompt, &config)
        .unwrap();
    assert_eq!(
        reader_out, reader_cold,
        "registry eviction must not disturb an attached reader"
    );

    // After eviction, new begin_with_prefix calls miss and run cold — still
    // correct.
    let mut late = Session::with_pool(&model, spec.build().unwrap(), budget, pool.clone())
        .with_prefix_registry(registry.clone(), context);
    // The donor re-registered nothing since the clear, but *reader* and
    // *donor* forwards after the clear may have re-registered blocks; either
    // way the output must match cold.
    late.begin_with_prefix(&prompt, &config).unwrap();
    while late.is_decoding() {
        late.step().unwrap();
    }
    assert_eq!(late.take_output().unwrap(), reference);

    drop(donor);
    drop(reader);
    drop(late);
    registry.clear();
    assert_eq!(
        pool.blocks_in_use(),
        0,
        "leaked blocks after eviction dance"
    );
}

/// Preempt-then-resume mid-prefill on a strict pool: the preempted request is
/// re-admitted, re-prefilled (re-attaching its shared prefix) and completes
/// token-identically; the pool never overshoots and nothing leaks.
#[test]
fn preempt_then_resume_mid_prefill_is_token_identical() {
    let model = ModelFamily::Tiny.build(37);
    let bytes = model.empty_cache().bytes_per_token();
    let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
    let spec = PolicySpec::keyformer_default();
    let base = ServerConfig::new(spec, budget, 28 * bytes)
        .with_block_size(4)
        .with_prefill_chunk(4)
        .with_strict_pool(true);
    for config in [base, base.with_prefix_sharing(true)] {
        let mut server = Server::new(&model, config).unwrap();
        // A long decoder admitted first, then a fat prompt whose prefill
        // transient cannot fit alongside it: the prefill stalls, and after
        // PREEMPT_AFTER_STALLS steps the younger decoder is swapped out.
        server
            .submit(Request::new(
                0,
                synthetic_prompt(16, 0),
                GenerationConfig::new(24),
            ))
            .unwrap();
        server
            .submit(Request::new(
                1,
                synthetic_prompt(24, 1),
                GenerationConfig::new(4),
            ))
            .unwrap();
        let capacity = server.total_blocks();
        let mut preempted = 0;
        for _ in 0..2_000 {
            if server.is_idle() {
                break;
            }
            let report = server.step();
            preempted += report.preempted;
            assert!(
                server.pool().blocks_in_use() <= capacity,
                "strict pool overshot during preemption"
            );
        }
        assert!(
            server.is_idle(),
            "scheduler failed to drain within the step bound (sharing={}): \
             queued {}, running {}",
            config.prefix_sharing,
            server.queued(),
            server.running()
        );
        if config.prefix_sharing {
            // Pressure relief escalates: registry pins are reclaimed first,
            // and preemption only fires if that was not enough. Either way the
            // dry pool must have forced one of the two.
            let evictions = server.registry_stats().unwrap().evictions;
            assert!(
                evictions > 0 || preempted > 0,
                "scenario must exercise pressure relief (evictions {evictions}, preempted {preempted})"
            );
        } else {
            assert!(preempted > 0, "scenario must exercise preemption");
        }
        assert!(server.failures().is_empty(), "{:?}", server.failures());
        assert_eq!(server.completions().len(), 2);
        for (id, len, gen) in [(0u64, 16usize, 24usize), (1, 24, 4)] {
            let alone = Session::with_pool(
                &model,
                spec.build().unwrap(),
                budget,
                SharedBlockPool::unbounded(4),
            )
            .generate(
                &synthetic_prompt(len, id as u32),
                &GenerationConfig::new(gen),
            )
            .unwrap();
            let completion = server
                .completions()
                .iter()
                .find(|c| c.id.raw() == id)
                .unwrap();
            assert_eq!(
                completion.output, alone,
                "request {id} diverged after preemption (sharing={})",
                config.prefix_sharing
            );
        }
        if let Some(registry) = server.prefix_registry() {
            registry.clear();
        }
        assert_eq!(server.pool().blocks_in_use(), 0, "leaked blocks");
    }
}

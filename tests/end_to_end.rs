//! Cross-crate integration tests: the full pipeline from synthetic dataset through
//! the transformer substrate, the cache policies and the ROUGE scorer, exercised the
//! way the paper's headline experiments use it.

use keyformer::core::budget::CacheBudgetSpec;
use keyformer::core::spec::PolicySpec;
use keyformer::model::engine::InferenceEngine;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::text::datasets::summarization::{SummarizationDataset, SummarizationSpec};
use keyformer::text::eval::{evaluate_generation, EvalSetting};

fn small_spec() -> SummarizationSpec {
    SummarizationSpec {
        article_len: 160,
        num_facts: 5,
        filler_pool: 100,
        plant_span: 0.7,
        seed: 4_242,
    }
}

#[test]
fn full_attention_recovers_the_planted_summary_on_every_family() {
    let dataset = SummarizationDataset::generate(&small_spec(), 2);
    for family in ModelFamily::paper_families() {
        let model = family.build(3);
        let eval = evaluate_generation(&model, &EvalSetting::full_attention(), dataset.samples());
        // ALiBi's distance penalty makes long-range retrieval inherently harder than
        // RoPE/learned positions, so the acceptance bar is family-independent but
        // conservative.
        assert!(
            eval.rouge.rouge2.f1 > 0.45,
            "{family}: full attention should recover the chain, got {:?}",
            eval.rouge.rouge2
        );
    }
}

#[test]
fn keyformer_beats_window_attention_at_half_the_cache() {
    let dataset = SummarizationDataset::generate(&small_spec(), 3);
    let model = ModelFamily::GptJLike.build(3);
    let budget = Some(CacheBudgetSpec::with_fraction(0.6).unwrap());
    let keyformer = evaluate_generation(
        &model,
        &EvalSetting {
            policy: PolicySpec::keyformer_default(),
            budget,
        },
        dataset.samples(),
    );
    let window = evaluate_generation(
        &model,
        &EvalSetting {
            policy: PolicySpec::Window,
            budget,
        },
        dataset.samples(),
    );
    assert!(
        keyformer.rouge.rouge1.f1 > window.rouge.rouge1.f1,
        "keyformer {:?} should beat window {:?}",
        keyformer.rouge.rouge1,
        window.rouge.rouge1
    );
}

#[test]
fn budgeted_policies_respect_the_cache_budget_exactly() {
    let dataset = SummarizationDataset::generate(&small_spec(), 1);
    let sample = &dataset.samples()[0];
    let model = ModelFamily::MptLike.build(5);
    for policy in [
        PolicySpec::keyformer_default(),
        PolicySpec::h2o_default(),
        PolicySpec::Window,
        PolicySpec::streaming_default(),
    ] {
        let spec = CacheBudgetSpec::with_fraction(0.5).unwrap();
        let mut engine = InferenceEngine::new(&model, policy.build().unwrap(), Some(spec));
        let out = engine.generate(&sample.prompt, &GenerationConfig::new(6));
        let budget = engine.budget().unwrap();
        for &slots in &out.final_cache_slots {
            assert!(
                slots <= budget.capacity(),
                "{}: {slots} slots exceed capacity {}",
                policy.label(),
                budget.capacity()
            );
        }
        assert!(out.final_cache_bytes < out.peak_cache_bytes);
    }
}

#[test]
fn generation_is_deterministic_across_engine_instances() {
    let dataset = SummarizationDataset::generate(&small_spec(), 1);
    let sample = &dataset.samples()[0];
    let model = ModelFamily::CerebrasLike.build(9);
    let run = || {
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(CacheBudgetSpec::with_fraction(0.7).unwrap()),
        );
        engine
            .generate(&sample.prompt, &GenerationConfig::new(9))
            .generated
    };
    assert_eq!(run(), run());
}

#[test]
fn harness_perf_experiments_produce_paper_shaped_results() {
    use keyformer::harness::{run_experiment, ExperimentId};
    let fig9 = run_experiment(ExperimentId::Fig9, 1);
    // Keyformer's speedup at 4k should exceed its speedup at 1k (the paper's trend).
    let kf_1k: f64 = fig9.cell(0, "keyformer_50pct").unwrap().parse().unwrap();
    let kf_4k: f64 = fig9.cell(2, "keyformer_50pct").unwrap().parse().unwrap();
    assert!(kf_4k > kf_1k);
    let table1 = run_experiment(ExperimentId::Table1, 1);
    assert_eq!(table1.cell(3, "full"), Some("OOM"));
}

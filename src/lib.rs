//! # keyformer
//!
//! Facade crate of the Keyformer reproduction (Adnan et al., MLSys 2024): re-exports
//! the full public API of the workspace so applications can depend on a single crate.
//!
//! * [`core`] — KV cache, eviction-policy trait and the policy zoo (Keyformer, H2O,
//!   window attention, StreamingLLM, …).
//! * [`model`] — the decoder-only transformer substrate (RoPE / ALiBi / learned
//!   positions) and the [`model::engine::InferenceEngine`].
//! * [`serve`] — the continuous-batching serving layer: many concurrent sequences
//!   decoding against one shared model behind a memory-aware admission queue.
//! * [`net`] — the `kf_serve` network front-end over [`serve`]: TCP listener, job
//!   lifecycle, streaming drains and an idempotent result cache.
//! * [`text`] — synthetic tasks, ROUGE and evaluation drivers.
//! * [`perf`] — the analytic A100 roofline model.
//! * [`harness`] — experiment definitions regenerating every paper table and figure.
//!
//! ```
//! use keyformer::core::{CacheBudgetSpec, PolicySpec};
//! use keyformer::model::engine::InferenceEngine;
//! use keyformer::model::families::ModelFamily;
//! use keyformer::model::generation::GenerationConfig;
//!
//! let model = ModelFamily::MptLike.build(7);
//! let policy = PolicySpec::keyformer_default().build()?;
//! let budget = CacheBudgetSpec::with_fraction(0.5)?;
//! let mut engine = InferenceEngine::new(&model, policy, Some(budget));
//! let prompt: Vec<u32> = (16..80).collect();
//! let output = engine.generate(&prompt, &GenerationConfig::new(8));
//! assert_eq!(output.generated.len(), 8);
//! # Ok::<(), keyformer::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use keyformer_core as core;
pub use keyformer_harness as harness;
pub use keyformer_model as model;
pub use keyformer_perf as perf;
pub use keyformer_serve as serve;
pub use keyformer_tensor as tensor;
pub use keyformer_text as text;
pub use kf_serve as net;

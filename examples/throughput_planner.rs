//! Serving-capacity planner built on the analytic A100 roofline model: for a target
//! sequence length, report latency, throughput and the largest batch that fits for
//! full attention vs. Keyformer at several cache budgets (the Table 1 / Figure 9
//! scenario as a planning tool).
//!
//! ```text
//! cargo run --release --example throughput_planner -- 4096
//! ```

use keyformer::perf::{CachePolicyCost, PerfModel, Workload};

fn main() {
    let seq: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let model = PerfModel::paper_default();
    let workload = Workload::symmetric(seq).with_beam_size(4);
    println!(
        "model {} on {}, workload {}+{} tokens, beam 4",
        model.model.name, model.accelerator.name, seq, seq
    );
    println!(
        "{:<22} {:>12} {:>14} {:>12} {:>10}",
        "policy", "latency (s)", "tokens/s", "peak GB", "max batch"
    );
    let policies = [
        CachePolicyCost::full_attention(),
        CachePolicyCost::h2o(0.9),
        CachePolicyCost::keyformer(0.7),
        CachePolicyCost::keyformer(0.5),
        CachePolicyCost::window(0.5),
    ];
    for policy in policies {
        let est = model.estimate(&workload, &policy);
        let max_batch = model.max_batch_size(&workload, &policy, 64);
        println!(
            "{:<22} {:>12.2} {:>14.1} {:>12.1} {:>10}",
            format!("{} ({:.0}%)", policy.name, policy.cache_fraction * 100.0),
            est.total_latency_s(),
            est.tokens_per_second,
            est.peak_bytes as f64 / 1e9,
            max_batch.map_or("OOM".to_string(), |b| b.to_string())
        );
    }
}

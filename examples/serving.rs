//! Serving quickstart: run the same burst of requests through the
//! continuous-batching engine under full attention and under Keyformer with a
//! 50% KV budget, at the same fixed KV-byte pool, and compare throughput and
//! per-token latency.
//!
//! This example drives the event-driven [`Engine`] API directly (`submit` →
//! `step` → `completions`), the migration target for code that previously
//! used the batch `Server` facade; see `examples/streaming_chat.rs` for
//! per-token event streaming, cancellation and priorities.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! [`Engine`]: keyformer::serve::Engine

use keyformer::core::{CacheBudgetSpec, PolicySpec};
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::serve::{Engine, Request, ServerConfig, DEFAULT_SERVE_BLOCK_SIZE};
use keyformer::text::datasets::summarization::{SummarizationDataset, SummarizationSpec};

fn main() {
    let spec = SummarizationSpec {
        article_len: 96,
        num_facts: 4,
        filler_pool: 80,
        plant_span: 0.7,
        seed: 1_234,
    };
    let dataset = SummarizationDataset::generate(&spec, 8);
    let model = ModelFamily::MptLike.build(3);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    let max_len = dataset
        .samples()
        .iter()
        .map(|s| s.prompt.len() + s.reference.len())
        .max()
        .expect("dataset is non-empty");
    // Pool sized so full attention fits two requests at a time, with one block
    // per layer of slack for the block-granularity rounding of reservations.
    let pool_bytes = 2 * (max_len + DEFAULT_SERVE_BLOCK_SIZE) * bytes_per_token;
    let step_budget = 40;
    println!(
        "{} requests, KV pool {} KiB, budget {} scheduler steps\n",
        dataset.samples().len(),
        pool_bytes / 1024,
        step_budget
    );

    for (label, policy, budget) in [
        ("Full attention", PolicySpec::Full, None),
        (
            "Keyformer @ 50% KV cache",
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::with_fraction(0.5).expect("valid budget")),
        ),
    ] {
        let mut engine = Engine::new(&model, ServerConfig::new(policy, budget, pool_bytes))
            .expect("valid serving config");
        // This driver harvests completions() retrospectively, so skip event
        // buffering (streaming_chat.rs shows the event-driven side).
        engine.record_events(false);
        for (i, sample) in dataset.samples().iter().enumerate() {
            engine
                .submit(Request::new(
                    i as u64,
                    sample.prompt.clone(),
                    GenerationConfig::new(sample.reference.len()),
                ))
                .expect("requests carry no overrides");
        }
        engine.run(step_budget);
        let stats = engine.stats();
        let completions = engine.completions();
        let completed = completions.len();
        println!("== {label} ==");
        println!(
            "  completed {completed}/{} requests in {} steps ({:.3} requests/step)",
            dataset.samples().len(),
            stats.steps,
            completed as f64 / stats.steps.max(1) as f64
        );
        println!(
            "  peak concurrency {}, mean batch {:.2}, mean live KV {} KiB",
            stats.peak_concurrency,
            stats.mean_batch_size(),
            (stats.mean_live_kv_bytes() / 1024.0).round()
        );
        if completed > 0 {
            let mean_ttft = completions
                .iter()
                .filter_map(|c| c.ttft_steps())
                .sum::<usize>() as f64
                / completed as f64;
            let mean_itl = completions
                .iter()
                .map(|c| c.mean_inter_token_steps())
                .sum::<f64>()
                / completed as f64;
            println!(
                "  mean TTFT {mean_ttft:.1} steps, mean inter-token latency {mean_itl:.2} steps"
            );
        }
        if let Some(first) = completions.first() {
            println!("  first completion: {first}\n");
        } else {
            println!("  no completions inside the step budget\n");
        }
    }
}

//! Quickstart: run one summarization request under full attention and under
//! Keyformer with a 50% KV-cache budget, and compare the outputs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use keyformer::core::{CacheBudgetSpec, PolicySpec};
use keyformer::model::engine::InferenceEngine;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::text::datasets::summarization::{SummarizationDataset, SummarizationSpec};
use keyformer::text::rouge::rouge_scores;
use keyformer::text::Vocabulary;

fn main() {
    let vocab = Vocabulary::new();
    let dataset = SummarizationDataset::generate(&SummarizationSpec::paper_default(), 1);
    let sample = &dataset.samples()[0];
    let model = ModelFamily::MptLike.build(3);
    println!("prompt length: {} tokens", sample.prompt.len());
    println!("reference summary: {}\n", vocab.render(&sample.reference));

    for (label, policy, budget) in [
        ("Full attention", PolicySpec::Full, None),
        (
            "Keyformer @ 50% KV cache",
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::with_fraction(0.5).expect("valid budget")),
        ),
        (
            "Window attention @ 50% KV cache",
            PolicySpec::Window,
            Some(CacheBudgetSpec::with_fraction(0.5).expect("valid budget")),
        ),
    ] {
        let mut engine =
            InferenceEngine::new(&model, policy.build().expect("valid policy"), budget);
        let output = engine.generate(
            &sample.prompt,
            &GenerationConfig::new(sample.reference.len()),
        );
        let rouge = rouge_scores(&output.generated, &sample.reference);
        println!("== {label} ==");
        println!("  generated: {}", vocab.render(&output.generated));
        println!(
            "  ROUGE-1 {:.3} / ROUGE-2 {:.3} / ROUGE-L {:.3}",
            rouge.rouge1.f1, rouge.rouge2.f1, rouge.rouge_l.f1
        );
        println!(
            "  final KV cache: {} slots per layer, {} KiB\n",
            output.final_cache_slots[0],
            output.final_cache_bytes / 1024
        );
    }
}

//! Streaming chat: four clients share one continuous-batching [`Engine`],
//! each watching its own per-token event stream — with a mid-generation
//! cancellation and a high-priority request jumping the admission queue.
//!
//! The pool is sized to run two chats at once, so the scheduler genuinely
//! interleaves: you can watch tokens of concurrent requests alternate step by
//! step, see `bob` hang up mid-answer (instantly freeing his KV blocks for
//! the queue), and see `carol`'s priority-5 request overtake `dave`, who was
//! submitted three steps earlier.
//!
//! ```text
//! cargo run --release --example streaming_chat
//! ```
//!
//! [`Engine`]: keyformer::serve::Engine

use keyformer::core::{CacheBudgetSpec, PolicySpec};
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::serve::{Engine, EventKind, Request, RequestId, ServerConfig, SubmitOptions};

/// Synthetic prompt tokens for one client.
fn prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|i| (i as u32 * 13 + 5 + salt * 17) % 120)
        .collect()
}

fn client(id: RequestId) -> &'static str {
    match id.raw() {
        0 => "alice",
        1 => "bob  ",
        2 => "dave ",
        3 => "carol",
        _ => "?",
    }
}

fn main() {
    let model = ModelFamily::Tiny.build(42);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    // 30 cached tokens of pool = 15 four-slot blocks: exactly two concurrent
    // Keyformer@50% chats with 24-token prompts (6 blocks each).
    let mut engine = Engine::new(
        &model,
        ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).expect("valid budget")),
            30 * bytes_per_token,
        )
        .with_block_size(4),
    )
    .expect("valid engine config");

    // Three chats arrive together; the pool runs two, so dave queues.
    let alice = engine
        .submit(Request::new(0, prompt(24, 0), GenerationConfig::new(6)))
        .expect("valid request");
    let bob = engine
        .submit(Request::new(1, prompt(24, 1), GenerationConfig::new(16)))
        .expect("valid request");
    engine
        .submit(Request::new(2, prompt(24, 2), GenerationConfig::new(4)))
        .expect("valid request");
    println!("step    0  submitted: alice (6 tokens), bob (16 tokens), dave (4 tokens)");

    let mut carol_submitted = false;
    let mut bob_tokens = 0;
    let mut bob_cancelled = false;
    while !engine.is_idle() {
        engine.step();
        // Carol bursts in mid-run at priority 5: she overtakes dave, who has
        // been queued since step 0 at priority 0.
        if engine.steps() == 3 && !carol_submitted {
            engine
                .submit_with(
                    Request::new(3, prompt(24, 3), GenerationConfig::new(5)),
                    SubmitOptions::new().with_priority(5),
                )
                .expect("valid request");
            carol_submitted = true;
            println!("step    3  submitted: carol (5 tokens, priority 5 — jumps dave)");
        }
        for event in engine.drain_events() {
            println!(
                "step {:>4} {}: {}",
                event.step,
                client(event.id),
                event.kind
            );
            if event.id == bob.id()
                && matches!(
                    event.kind,
                    EventKind::FirstToken { .. } | EventKind::Token { .. }
                )
            {
                bob_tokens += 1;
            }
        }
        // Four tokens in, bob hangs up: cancellation mid-generation instantly
        // frees his blocks and reservation for whoever is queued.
        if bob_tokens >= 4 && !bob_cancelled {
            bob_cancelled = engine.cancel(bob.id());
            println!("           bob hangs up mid-answer -> cancel({})", bob.id());
            for event in engine.drain_events_for(bob.id()) {
                println!("           {}: {}", client(event.id), event.kind);
            }
        }
    }

    println!("\n== transcript summary ==");
    for completion in engine.completions() {
        println!(
            "  {} {} | tokens {:?}",
            client(completion.id),
            completion,
            completion.output.generated
        );
    }
    for failure in engine.failures() {
        println!("  {} {}", client(failure.id), failure);
    }
    let alice_done = engine
        .completions()
        .iter()
        .find(|c| c.id == alice.id())
        .expect("alice completes");
    println!(
        "\nalice saw her first token after {} steps and then one token every {:.1} steps",
        alice_done.ttft_steps().expect("alice streamed tokens"),
        alice_done.mean_inter_token_steps()
    );
    assert_eq!(engine.pool().blocks_in_use(), 0, "pool drained");
    assert_eq!(engine.pool().blocks_reserved(), 0, "reservations drained");
    println!("pool fully drained: no blocks or reservations left behind");
}

//! Conversation recap (the SODA-style scenario): a multi-turn dialogue whose final
//! turn asks the assistant to recap the discussed topics, evaluated under several
//! cache policies.
//!
//! ```text
//! cargo run --release --example chat_session
//! ```

use keyformer::core::{CacheBudgetSpec, PolicySpec};
use keyformer::model::engine::InferenceEngine;
use keyformer::model::families::ModelFamily;
use keyformer::model::generation::GenerationConfig;
use keyformer::text::datasets::dialogue::{DialogueDataset, DialogueSpec};
use keyformer::text::rouge::rouge_scores;
use keyformer::text::Vocabulary;

fn main() {
    let vocab = Vocabulary::new();
    let spec = DialogueSpec::paper_default();
    let dataset = DialogueDataset::generate(&spec, 1);
    let sample = &dataset.samples()[0];
    let model = ModelFamily::MptLike.build(3);

    println!(
        "dialogue: {} turns, {} tokens, {} topics to recap",
        spec.num_turns,
        sample.prompt.len(),
        sample.num_facts
    );
    println!("expected recap: {}\n", vocab.render(&sample.reference));

    for (label, policy, fraction) in [
        ("Full attention", PolicySpec::Full, None),
        (
            "Keyformer @ 60%",
            PolicySpec::keyformer_default(),
            Some(0.6),
        ),
        ("H2O @ 60%", PolicySpec::h2o_default(), Some(0.6)),
        (
            "StreamingLLM @ 60%",
            PolicySpec::streaming_default(),
            Some(0.6),
        ),
    ] {
        let budget = fraction.map(|f| CacheBudgetSpec::with_fraction(f).expect("valid budget"));
        let mut engine =
            InferenceEngine::new(&model, policy.build().expect("valid policy"), budget);
        let output = engine.generate(
            &sample.prompt,
            &GenerationConfig::new(sample.reference.len()),
        );
        let rouge = rouge_scores(&output.generated, &sample.reference);
        println!("== {label} ==");
        println!("  recap: {}", vocab.render(&output.generated));
        println!("  ROUGE-2 {:.3}\n", rouge.rouge2.f1);
    }
}

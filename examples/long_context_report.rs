//! Long-context report summarization (the Figure 8 scenario): a GovReport-style
//! document several times longer than a news article, summarised with Keyformer and
//! H2O at small cache budgets on the long-context MPT-storywriter-like model.
//!
//! ```text
//! cargo run --release --example long_context_report
//! ```

use keyformer::core::{CacheBudgetSpec, PolicySpec};
use keyformer::model::families::ModelFamily;
use keyformer::text::datasets::longdoc::{LongDocDataset, LongDocSpec};
use keyformer::text::eval::{evaluate_generation, EvalSetting};

fn main() {
    let spec = LongDocSpec::paper_default();
    let dataset = LongDocDataset::generate(&spec, 2);
    println!(
        "report length: {} tokens, {} salient facts per report",
        spec.prompt_len(),
        spec.total_facts()
    );
    let model = ModelFamily::MptStorywriterLike.build(3);
    let full = evaluate_generation(&model, &EvalSetting::full_attention(), dataset.samples());
    println!("full attention: ROUGE-2 {:.3}\n", full.rouge.rouge2.f1);
    println!("{:<10} {:>10} {:>12}", "kv cache", "h2o", "keyformer");
    for fraction in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut cells = Vec::new();
        for policy in [PolicySpec::h2o_default(), PolicySpec::keyformer_default()] {
            let setting = EvalSetting {
                policy,
                budget: Some(CacheBudgetSpec::with_fraction(fraction).expect("valid budget")),
            };
            let eval = evaluate_generation(&model, &setting, dataset.samples());
            cells.push(eval.rouge.rouge2.f1);
        }
        println!(
            "{:<10} {:>10.3} {:>12.3}",
            format!("{:.0}%", fraction * 100.0),
            cells[0],
            cells[1]
        );
    }
}

//! Summarization sweep: ROUGE-2 vs. KV-cache budget for every policy on one model
//! family — a scaled-down, runnable version of the paper's Figure 7.
//!
//! ```text
//! cargo run --release --example summarization_sweep
//! ```

use keyformer::core::{CacheBudgetSpec, PolicySpec};
use keyformer::model::families::ModelFamily;
use keyformer::text::datasets::summarization::{SummarizationDataset, SummarizationSpec};
use keyformer::text::eval::{evaluate_generation, EvalSetting};

fn main() {
    let dataset = SummarizationDataset::generate(&SummarizationSpec::paper_default(), 3);
    let model = ModelFamily::GptJLike.build(3);
    let full = evaluate_generation(&model, &EvalSetting::full_attention(), dataset.samples());
    println!("model: {}", ModelFamily::GptJLike.label());
    println!(
        "full attention baseline: ROUGE-2 {:.3} (99% band at {:.3})\n",
        full.rouge.rouge2.f1,
        0.99 * full.rouge.rouge2.f1
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "kv cache", "window", "h2o", "keyformer", "streaming-llm"
    );
    for fraction in [0.3, 0.5, 0.7, 0.9] {
        let mut cells = Vec::new();
        for policy in [
            PolicySpec::Window,
            PolicySpec::h2o_default(),
            PolicySpec::keyformer_default(),
            PolicySpec::streaming_default(),
        ] {
            let setting = EvalSetting {
                policy,
                budget: Some(CacheBudgetSpec::with_fraction(fraction).expect("valid budget")),
            };
            let eval = evaluate_generation(&model, &setting, dataset.samples());
            cells.push(eval.rouge.rouge2.f1);
        }
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3} {:>14.3}",
            format!("{:.0}%", fraction * 100.0),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
}
